"""Pluggable ready-CPU scheduling policies for the engine.

The engine's main loop repeatedly picks one CPU from the runnable set and
steps it.  The *default* pick — the runnable CPU with the smallest local
time, ties broken by CPU id — makes every run bit-for-bit deterministic,
which is what the paper's evaluation numbers rely on.  But determinism is
also a blind spot: the subtle bugs in DESIGN.md §6b (lost wakeups,
re-queued violation records, at-most-once compensation) were all
*schedule-dependent*.  This module factors the pick into a
:class:`SchedulePolicy` so the checking layer (:mod:`repro.check`) can
explore other interleavings:

* :class:`DeterministicPolicy` — the historical behaviour, and the
  default; golden numbers depend on it staying bit-for-bit identical.
* :class:`RandomPolicy` — seeded uniform choice among the CPUs within a
  bounded window of the earliest local time.
* :class:`PriorityPolicy` — PCT-style priority scheduling (Burckhardt et
  al., "A Randomized Scheduler with Probabilistic Guarantees of Finding
  Bugs"): each CPU gets a random static priority, and at ``depth`` random
  change-points the currently-chosen CPU is demoted below everyone else.

Every policy other than the deterministic one restricts its choice to
CPUs whose ``resume_at`` lies within ``window`` cycles of the earliest
runnable ``resume_at``.  The window is what guarantees progress under
adversarial choice: a CPU that is never picked keeps its ``resume_at``
fixed while the favoured CPUs advance theirs, so after at most ``window``
cycles of virtual time the laggard is the *only* in-window candidate and
must be scheduled.  (Spin loops — e.g. the condsync ack spin — therefore
cannot starve the thread they are waiting on.)

Schedules are reproducible: the same ``(policy name, seed)`` pair always
yields the same sequence of choices for the same program, because all
randomness comes from ``random.Random(seed)`` streams and per-CPU
priorities are derived from ``seed`` and the CPU id alone (never from
hash ordering or encounter order).
"""

from __future__ import annotations

import random

#: Default bound (cycles) on how far ahead of the earliest runnable CPU a
#: randomized policy may schedule.  Small enough that spin loops make
#: their partners runnable promptly, large enough to reorder commits.
DEFAULT_WINDOW = 250


def window_candidates(runnable, window):
    """The runnable CPUs within ``window`` cycles of the earliest one,
    in deterministic (resume_at, cpu_id) order."""
    earliest = min(cpu.resume_at for cpu in runnable)
    candidates = [cpu for cpu in runnable
                  if cpu.resume_at <= earliest + window]
    candidates.sort(key=lambda cpu: (cpu.resume_at, cpu.cpu_id))
    return candidates


class SchedulePolicy:
    """Strategy interface: pick the next CPU to step."""

    #: Registry name (see :func:`make_policy`).
    name = "abstract"

    #: True if the engine may serve this policy from its heap-backed
    #: ready queue instead of calling :meth:`choose` with a freshly
    #: scanned runnable list.  Only valid when the policy's pick is
    #: exactly min-(resume_at, cpu_id) — the heap's order.
    uses_ready_heap = False

    def choose(self, runnable):
        """Return one CPU from the non-empty list ``runnable``."""
        raise NotImplementedError

    def describe(self):
        """Replayable description, e.g. ``pct(seed=3, depth=3)``."""
        return self.name

    def snapshot_state(self):
        """Mutable mid-run state for :mod:`repro.sim.snapshot`.

        Stateless policies return ``None``; stateful ones capture
        whatever their next :meth:`choose` depends on, so a restored
        machine resumes the schedule bit-for-bit."""
        return None

    def restore_state(self, saved):
        pass


class DeterministicPolicy(SchedulePolicy):
    """The engine's historical schedule: smallest local time wins, ties
    break by CPU id.  Bit-for-bit identical to the inlined tie-break the
    engine shipped with; the golden-number tests pin this.

    ``uses_ready_heap`` lets the engine serve this order from its
    (resume_at, cpu_id) heap in O(log n) rather than scanning every CPU
    per step; :meth:`choose` remains the executable specification (the
    equivalence test in tests/test_schedule_policies.py runs both)."""

    name = "det"
    uses_ready_heap = True

    def choose(self, runnable):
        return min(runnable, key=lambda cpu: (cpu.resume_at, cpu.cpu_id))


class RandomPolicy(SchedulePolicy):
    """Seeded uniform choice among the in-window candidates."""

    name = "random"

    def __init__(self, seed=0, window=DEFAULT_WINDOW):
        self.seed = seed
        self.window = window
        self._rng = random.Random(seed)

    def choose(self, runnable):
        candidates = window_candidates(runnable, self.window)
        return self._rng.choice(candidates)

    def describe(self):
        return f"random(seed={self.seed})"

    def snapshot_state(self):
        return self._rng.getstate()

    def restore_state(self, saved):
        self._rng.setstate(saved)


class SchedulePruned(Exception):
    """Raised by :class:`ControlledPolicy` when every in-window candidate
    is in the sleep set: the continuation from this state is provably
    covered by a sibling branch, so the run is abandoned.

    Deliberately *not* a :class:`~repro.common.errors.ReproError`: it is
    exploration control flow, not a simulated failure, and must never be
    classified as an oracle violation.
    """

    def __init__(self, step, candidates):
        super().__init__(
            f"all candidates {list(candidates)} asleep at step {step}")
        self.step = step
        self.candidates = tuple(candidates)


class ControlledPolicy(SchedulePolicy):
    """Replay a prefix of scheduling choices, then run the deterministic
    continuation — recording every choice point on the way.

    This is the model checker's instrument (:mod:`repro.check.explore`):
    a schedule is identified by the *forced* choices (step index -> CPU
    id); every unforced step takes the first in-window candidate, i.e.
    the deterministic pick, so a run is a pure function of its prefix.
    After the run, :attr:`choices` holds the full choice sequence and
    :attr:`candidates` the in-window alternatives at each step — the
    branching structure the explorer enumerates.

    ``sleep`` seeds a sleep set (CPU ids whose scheduling is provably
    covered by an already-explored sibling).  From step ``sleep_from``
    on, the default pick skips sleeping CPUs; the explorer's recorder
    wakes entries (``policy.sleep.discard``) when an executed step is
    dependent on them.  When *every* candidate is asleep the run raises
    :class:`SchedulePruned`.  Forced choices override the sleep set —
    a replayed prefix is always followed verbatim.

    If a forced CPU is not among the candidates (possible only when the
    program or fault plan differs from the run that recorded the
    prefix), the divergence is recorded in :attr:`divergences` and the
    default pick is used for that step.
    """

    name = "controlled"

    def __init__(self, forced=None, sleep=(), sleep_from=0,
                 window=DEFAULT_WINDOW):
        self.forced = dict(forced) if forced else {}
        self.sleep = set(sleep)
        self.sleep_from = sleep_from
        self.window = window
        #: CPU id chosen at each step, in order.
        self.choices = []
        #: Tuple of in-window candidate CPU ids at each step.
        self.candidates = []
        #: (step, wanted_cpu_id) pairs where a forced choice was
        #: unavailable; empty on a faithful replay.
        self.divergences = []

    def choose(self, runnable):
        step = len(self.choices)
        candidates = window_candidates(runnable, self.window)
        ids = tuple(cpu.cpu_id for cpu in candidates)
        self.candidates.append(ids)
        chosen = None
        want = self.forced.get(step)
        if want is not None:
            for cpu in candidates:
                if cpu.cpu_id == want:
                    chosen = cpu
                    break
            if chosen is None:
                self.divergences.append((step, want))
        if chosen is None:
            if step >= self.sleep_from and self.sleep:
                for cpu in candidates:
                    if cpu.cpu_id not in self.sleep:
                        chosen = cpu
                        break
                if chosen is None:
                    # choices stays one short of candidates: the pruned
                    # step was observed but never executed.
                    raise SchedulePruned(step, ids)
            else:
                chosen = candidates[0]
        self.choices.append(chosen.cpu_id)
        return chosen

    def describe(self):
        forced = sorted(self.forced.items())
        return f"controlled(forced={forced})"

    def snapshot_state(self):
        # forced/sleep_from/window are construction parameters, not
        # mid-run state; sleep *is* mutated (the recorder wakes
        # entries) so it is captured alongside the recordings.  The
        # recording lists are append-only for the policy's lifetime, so
        # they are shared by reference with a length bound — capture
        # stays O(1) however long the run (the checkpoint cache captures
        # every few steps).
        return (self.choices, len(self.choices),
                self.candidates, len(self.candidates),
                self.divergences, len(self.divergences),
                frozenset(self.sleep))

    def restore_state(self, saved):
        (choices, n_choices, candidates, n_candidates,
         divergences, n_divergences, sleep) = saved
        self.choices[:] = choices[:n_choices]
        self.candidates[:] = candidates[:n_candidates]
        self.divergences[:] = divergences[:n_divergences]
        self.sleep = set(sleep)


class PriorityPolicy(SchedulePolicy):
    """PCT-style priority scheduling with ``depth`` change-points.

    Each CPU gets a static pseudo-random priority derived from
    ``(seed, cpu_id)``; the highest-priority in-window CPU runs.  At each
    of ``depth`` change-points (scheduling-step indices drawn from
    ``range(1, horizon)``), the CPU chosen at that step is demoted below
    every static priority — the PCT move that forces the "wrong" thread
    to run at a critical moment.

    ``change_points`` may be passed explicitly (a sequence of step
    indices) to replay or *shrink* a failing schedule: the fuzz driver
    re-runs with subsets of the original points to find a minimal set
    that still fails.  The points that actually fired are recorded in
    :attr:`fired` (as ``(step, demoted_cpu_id)`` pairs).
    """

    name = "pct"

    def __init__(self, seed=0, depth=3, horizon=50_000, change_points=None,
                 window=DEFAULT_WINDOW):
        self.seed = seed
        self.depth = depth
        self.horizon = horizon
        self.window = window
        if change_points is None:
            rng = random.Random(seed)
            span = range(1, max(2, horizon))
            change_points = sorted(
                rng.sample(span, min(depth, len(span))))
        self.change_points = sorted(change_points)
        self.fired = []
        self._next_point = 0
        self._steps = 0
        #: cpu_id -> demotion ordinal; the most recently demoted CPU has
        #: the lowest priority of all.
        self._demoted = {}
        self._demote_seq = 0

    def _static_priority(self, cpu_id):
        # Derived from (seed, cpu_id) alone: stable across runs and
        # independent of encounter order, so replays and shrinks see the
        # same priorities.
        return random.Random(self.seed * 1_000_003 + cpu_id).random()

    def _rank(self, cpu):
        if cpu.cpu_id in self._demoted:
            # Demoted band: below all static priorities; a later demotion
            # ranks below an earlier one.
            return (1, self._demote_seq - self._demoted[cpu.cpu_id])
        return (0, self._static_priority(cpu.cpu_id))

    def choose(self, runnable):
        self._steps += 1
        candidates = window_candidates(runnable, self.window)
        chosen = min(candidates,
                     key=lambda cpu: (self._rank(cpu),
                                      cpu.resume_at, cpu.cpu_id))
        if (self._next_point < len(self.change_points)
                and self._steps >= self.change_points[self._next_point]):
            self._next_point += 1
            self._demote_seq += 1
            self._demoted[chosen.cpu_id] = self._demote_seq
            self.fired.append((self._steps, chosen.cpu_id))
        return chosen

    def describe(self):
        return (f"pct(seed={self.seed}, depth={self.depth}, "
                f"change_points={list(self.change_points)})")

    def snapshot_state(self):
        return (self._steps, self._next_point, self._demote_seq,
                dict(self._demoted), list(self.fired))

    def restore_state(self, saved):
        (self._steps, self._next_point, self._demote_seq,
         demoted, fired) = saved
        self._demoted = dict(demoted)
        self.fired[:] = fired


#: name -> constructor accepting (seed, **kwargs).
POLICIES = {
    DeterministicPolicy.name: lambda seed=0, **kw: DeterministicPolicy(),
    RandomPolicy.name: RandomPolicy,
    PriorityPolicy.name: PriorityPolicy,
    ControlledPolicy.name: lambda seed=0, **kw: ControlledPolicy(**kw),
}


def make_policy(name, seed=0, **kwargs):
    """Build a policy by registry name (``det``, ``random``, ``pct``)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown schedule policy {name!r}; "
            f"choose from {sorted(POLICIES)}") from None
    return factory(seed=seed, **kwargs)
