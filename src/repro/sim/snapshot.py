"""Deep machine snapshot/restore: resume a run mid-schedule.

The model checker re-executes every schedule prefix from cycle 0
(VeriSoft-style stateless search).  This module adds the CHESS-style
alternative: capture the whole machine at a step boundary and later
*resume* from that point, so a child schedule that shares a long prefix
with its parent skips the replay.

Capturing the data plane is easy — every component exposes a
``snapshot_state()``/``restore_state()`` pair.  The hard part is the
*control plane*: workloads, handlers, and dispatchers are Python
generators, which cannot be copied or pickled.  Restore therefore
rebuilds them by **ghost replay**:

1. Reset the target machine to pristine and re-run the original program
   setup (same program, same seed).  Setup only *creates* generators —
   nothing runs until the engine's first ``send`` — so this recreates
   the frame stacks' level 0 with virgin host state (closures, locals,
   per-program RNGs).
2. Swap ``machine.htm`` for a :class:`GhostHtm` and re-feed the **step
   journal** — the per-step record of every engine↔generator
   interaction the original run made (recorded by the engine when
   :meth:`Machine.enable_journal` is on).  Host code genuinely
   re-executes, rebuilding its closures and runtime bookkeeping, but the
   ops it yields are discarded: every value it *receives* (send values,
   thrown exceptions, ISA registers, HTM status) comes from the journal,
   so it retraces the original path exactly without touching the data
   plane.
3. Overwrite the data plane (memory, caches, HTM, ISA registers, CPU
   scheduling state, stats) from the snapshot and self-check that the
   rebuilt frame stacks match the captured frame counts.

A resumed run is then bit-for-bit identical to the original straight
line — cycles, stats, results — which ``tests/test_snapshot.py`` pins
and the explore layer enforces differentially.
"""

from __future__ import annotations

from repro.common.errors import IsaError, ReproError, SimulationError, TxRollback
from repro.isa.context import DONE
from repro.isa.dispatch import (
    default_abort_dispatcher,
    default_violation_dispatcher,
)
from repro.isa.state import IsaState


class SnapshotError(ReproError):
    """A snapshot could not be taken or faithfully restored.

    Callers treat this as "fall back to stateless replay", never as a
    verdict about the program under test.
    """


# Restoring this into any ``IsaState`` resets every mutable register.
_PRISTINE_ISA = IsaState(0).snapshot_state()

# Feed tag singletons.  A step's feed is what the engine gave the top
# frame: a parked-op re-issue (no generator interaction), a sent value,
# or a thrown exception.
_FEED_PARKED = ("p",)


# ----------------------------------------------------------------------
# The step journal
# ----------------------------------------------------------------------


class StepJournal:
    """Per-step log of engine↔generator interactions.

    One entry per engine step::

        (cpu_id, now, sync, push, feed, post)

    * ``sync`` — ISA registers host code can observe, captured at the
      top of ``_step``: ``(viol_reporting, xvcurrent, xvaddr,
      xabort_code, xtcbptr_top)``.  They are re-applied before the feed
      so the resumed generator sees exactly what it saw originally.
    * ``push`` — ``None``, or ``(kind, code_id, xvcurrent, xvaddr,
      xvpc)`` when the step pushed a dispatcher frame.  The register
      values are *post*-``pop_next`` (the ghost cannot re-run the pop:
      its violation queue drifts).
    * ``feed`` — ``("p",)`` parked re-issue, ``("s", value)`` send, or
      ``("t", exc)`` throw.
    * ``post`` — ``(levels, flatten_extra, unwound)``: the CPU's HTM
      nesting view after the step (``levels`` is a tuple of
      ``(txid, open, status)``) plus whether a capacity abort unwound
      the dispatcher stack.
    """

    __slots__ = (
        "entries", "_cpu", "_now", "_sync", "_push", "_feed", "_unwound")

    def __init__(self):
        self.entries = []
        self._cpu = 0
        self._now = 0
        self._sync = None
        self._push = None
        self._feed = _FEED_PARKED
        self._unwound = False

    def begin_step(self, cpu, now):
        isa = cpu.isa
        self._cpu = cpu.cpu_id
        self._now = now
        self._sync = (isa.viol_reporting, isa.xvcurrent, isa.xvaddr,
                      isa.xabort_code, isa.xtcbptr_top)
        self._push = None
        self._feed = _FEED_PARKED
        self._unwound = False

    def stage_push(self, kind, code_id, xvcurrent, xvaddr, xvpc):
        self._push = (kind, code_id, xvcurrent, xvaddr, xvpc)

    def stage_feed(self, feed):
        self._feed = feed

    def stage_unwound(self):
        self._unwound = True

    def close_step(self, machine, cpu):
        state = machine.htm.states[cpu.cpu_id]
        post = (
            tuple((info.txid, info.open, info.status)
                  for info in state.levels),
            state.flatten_extra,
            self._unwound,
        )
        self.entries.append(
            (self._cpu, self._now, self._sync, self._push, self._feed,
             post))


# ----------------------------------------------------------------------
# The ghost HTM
# ----------------------------------------------------------------------


class _GhostLevel:
    """Mirror of ``LevelInfo`` limited to what host code reads."""

    __slots__ = ("txid", "open", "status")

    def __init__(self, txid, open_, status):
        self.txid = txid
        self.open = open_
        self.status = status


class _GhostTxState:
    """Mirror of ``TxState``'s introspection surface."""

    __slots__ = ("cpu_id", "levels", "flatten_extra")

    def __init__(self, cpu_id):
        self.cpu_id = cpu_id
        self.levels = []
        self.flatten_extra = 0

    def depth(self):
        return len(self.levels)

    def in_tx(self):
        return bool(self.levels)

    def current(self):
        if not self.levels:
            raise IsaError(f"cpu {self.cpu_id}: no active transaction")
        return self.levels[-1]

    def is_validated(self):
        return any(info.status == "validated" for info in self.levels)


class GhostHtm:
    """Read-only HTM stand-in wired from journal ``post`` records.

    During ghost replay, host code may introspect transactional state
    (``t.depth()``, ``t.xstatus()``, the violation dispatcher's level
    scan) — but must never *operate* on it.  Operations only happen via
    yielded ops, which the ghost discards, so this class implements
    exactly the introspection surface and nothing else: any unexpected
    call fails loudly as an ``AttributeError`` → :class:`SnapshotError`
    at the caller.
    """

    def __init__(self, n_cpus):
        self.states = [_GhostTxState(cpu_id) for cpu_id in range(n_cpus)]

    def set_state(self, cpu_id, levels, flatten_extra):
        state = self.states[cpu_id]
        state.levels = [
            _GhostLevel(txid, open_, status)
            for txid, open_, status in levels
        ]
        state.flatten_extra = flatten_extra

    def depth(self, cpu_id):
        return len(self.states[cpu_id].levels)

    def xstatus(self, cpu_id):
        state = self.states[cpu_id]
        if not state.levels:
            return {"txid": 0, "type": None, "status": None, "level": 0}
        info = state.levels[-1]
        return {
            "txid": info.txid,
            "type": "open" if info.open else "closed",
            "status": info.status,
            "level": len(state.levels) + state.flatten_extra,
        }


# ----------------------------------------------------------------------
# The snapshot
# ----------------------------------------------------------------------


class MachineSnapshot:
    """Everything needed to rebuild a machine mid-run.

    All captured containers are copies; a snapshot can be restored any
    number of times, onto any machine with the same configuration.
    """

    __slots__ = (
        "n_cpus", "now", "live_programs", "capacity_retries", "journal",
        "journal_len", "cpus", "isa", "stats", "memory", "memmodel",
        "htm", "policy")

    def steps(self):
        """Engine steps completed at capture time."""
        return self.journal_len

    def approx_bytes(self):
        """Rough footprint estimate for cache budgeting.

        Deliberately cheap and deterministic: containers are costed by
        element count, not ``sys.getsizeof`` recursion.  Journal entries
        dominate real checkpoints, so the estimate tracks the true
        footprint well enough to make an LRU byte budget meaningful.
        """
        total = 512
        total += 160 * self.journal_len
        total += 64 * len(self.memory)
        total += 80 * len(self.stats)
        total += 384 * self.n_cpus
        total += 64 * _shallow_size(self.memmodel)
        total += 64 * _shallow_size(self.htm)
        total += 48 * _shallow_size(self.policy)
        return total


def _shallow_size(obj):
    """Top-level element count of a snapshot structure.  Shallow on
    purpose: budgeting runs on the hot deposit path, and the journal
    term above already scales with everything that grows per step."""
    if isinstance(obj, (tuple, list, dict, set, frozenset)):
        return 1 + len(obj)
    return 1


def capture(machine):
    """Capture ``machine`` at a step boundary.

    Must be called between engine steps (e.g. from
    ``machine.checkpoint_hook``) of a run started after
    :meth:`Machine.enable_journal`.
    """
    journal = machine._journal
    if journal is None:
        raise SnapshotError(
            "snapshot requires enable_journal() before the run")
    snap = MachineSnapshot()
    snap.n_cpus = machine.config.n_cpus
    snap.now = machine.now
    snap.live_programs = machine._live_programs
    snap.capacity_retries = list(machine._capacity_retries)
    # Zero-copy view: the journal is append-only and its entries are
    # immutable tuples, so sharing the live list plus a length bound is
    # exact — and keeps capture O(1) in the journal instead of O(steps)
    # (checkpoint deposits fire every few steps on the explore path).
    snap.journal = journal.entries
    snap.journal_len = len(journal.entries)
    snap.cpus = [
        (cpu.state, cpu.resume_at, cpu.daemon, cpu.wake_tokens,
         cpu.pending_abort, cpu.icount, cpu.handler_icount,
         cpu.dispatch_depth, cpu.send_value, cpu.throw_exc, cpu.result,
         cpu.failure, dict(cpu.parked), dict(cpu.saved_sends),
         dict(cpu.saved_viol), len(cpu.frames))
        for cpu in machine.cpus
    ]
    snap.isa = [cpu.isa.snapshot_state() for cpu in machine.cpus]
    snap.stats = machine.stats.snapshot_state()
    snap.memory = machine.memory.snapshot()
    snap.memmodel = machine.memmodel.snapshot_state()
    snap.htm = machine.htm.snapshot_state()
    policy_snapshot = getattr(machine.policy, "snapshot_state", None)
    snap.policy = (
        policy_snapshot() if policy_snapshot is not None else None)
    return snap


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------


def restore(machine, snapshot, setup_fn, restore_policy=True):
    """Rebuild ``snapshot`` onto ``machine`` so ``run()`` resumes it.

    ``setup_fn(machine)`` must re-run the *original* program setup —
    same program, same seed — and return the program object.  With
    ``restore_policy`` false the captured scheduling-policy state is not
    applied; the caller owns ``machine.policy`` (the explore layer
    installs each child's own controlled policy).

    Raises :class:`SnapshotError` when the ghost replay drifts from the
    journal; the machine is then in an undefined state and must be reset
    before reuse (the explore layer simply falls back to a stateless
    re-execution on a pooled machine).
    """
    if machine.config.n_cpus != snapshot.n_cpus:
        raise SnapshotError(
            f"snapshot has {snapshot.n_cpus} cpus, machine has "
            f"{machine.config.n_cpus}")
    reset_machine(machine)
    program = setup_fn(machine)
    _ghost_replay(machine, snapshot)
    _overwrite_data_plane(machine, snapshot, restore_policy)
    return program


def reset_machine(machine):
    """Return a (possibly used) machine to its just-constructed state.

    Only control-plane state is reset; the data plane (memory, caches,
    HTM, stats) is overwritten wholesale by
    :func:`_overwrite_data_plane` after the ghost replay, so scrubbing
    it here would be wasted work — except the stats and memory, which
    program setup *appends* to and therefore must start empty.
    """
    machine.codereg.reset()
    for cpu in machine.cpus:
        for frame in reversed(cpu.frames):
            try:
                frame.close()
            except Exception:  # noqa: BLE001 - cleanup must not fail
                pass
        cpu.frames = []
        cpu.dispatch_depth = 0
        cpu.parked.clear()
        cpu.saved_sends.clear()
        cpu.saved_viol.clear()
        cpu.send_value = None
        cpu.throw_exc = None
        cpu.pending_abort = False
        cpu.wake_tokens = 0
        cpu.state = DONE
        cpu.resume_at = 0
        cpu.daemon = False
        cpu.result = None
        cpu.failure = None
        cpu.icount = 0
        cpu.handler_icount = 0
        cpu.rt = None
        cpu.isa.restore_state(_PRISTINE_ISA)
    machine.now = 0
    machine._live_programs = 0
    machine._ready = []
    machine.step_hook = None
    machine.checkpoint_hook = None
    machine.fault_hooks = None
    machine._capacity_retries = [0] * machine.config.n_cpus
    machine._steps_base = 0
    machine._journal = StepJournal()
    machine.stats.restore_state({})
    machine.memory.restore({})


def _ghost_replay(machine, snapshot):
    """Re-feed the journal through freshly-built generator stacks.

    ``machine.htm`` is swapped for a :class:`GhostHtm` for the duration,
    so host introspection sees the journaled nesting state and no real
    transactional machinery runs.  The yielded ops are discarded — their
    effects are already inside the snapshot's data plane.
    """
    ghost = GhostHtm(machine.config.n_cpus)
    real_htm = machine.htm
    machine.htm = ghost
    try:
        for index in range(snapshot.journal_len):
            cpu_id, now, sync, push, feed, post = snapshot.journal[index]
            cpu = machine.cpus[cpu_id]
            isa = cpu.isa
            machine.now = now
            (isa.viol_reporting, isa.xvcurrent, isa.xvaddr,
             isa.xabort_code, isa.xtcbptr_top) = sync
            if push is not None:
                kind, code_id, xvcurrent, xvaddr, xvpc = push
                isa.xvpc = xvpc
                isa.viol_reporting = False
                isa.xvcurrent = xvcurrent
                isa.xvaddr = xvaddr
                if code_id:
                    try:
                        factory = machine.codereg.get(code_id)
                    except SimulationError as exc:
                        raise SnapshotError(
                            f"ghost replay: handler registration "
                            f"drifted: {exc}") from None
                elif kind == "violation":
                    factory = default_violation_dispatcher
                else:
                    factory = default_abort_dispatcher
                cpu.frames.append(factory(cpu))
                cpu.dispatch_depth = len(cpu.frames) - 1
            tag = feed[0]
            if tag != "p":
                if not cpu.frames:
                    raise SnapshotError(
                        f"ghost replay: cpu {cpu_id} has no frame to "
                        f"feed at step {len(cpu.frames)}")
                frame = cpu.frames[-1]
                try:
                    if tag == "s":
                        frame.send(feed[1])
                    else:
                        frame.throw(feed[1])
                except StopIteration:
                    cpu.frames.pop()
                except TxRollback:
                    # Mirrors _rollback_escaped: drop the frame the
                    # rollback escaped (the generator is already
                    # exhausted by the propagation).
                    cpu.frames.pop()
                except Exception:  # noqa: BLE001 - mirrors _kill
                    for open_frame in reversed(cpu.frames):
                        try:
                            open_frame.close()
                        except Exception:  # noqa: BLE001
                            pass
                    cpu.frames = []
            levels, flatten_extra, unwound = post
            if unwound:
                # Mirrors _handle_capacity_abort: dispatcher frames are
                # dropped without close, the program frame survives.
                del cpu.frames[1:]
            cpu.dispatch_depth = max(0, len(cpu.frames) - 1)
            ghost.set_state(cpu_id, levels, flatten_extra)
    except AttributeError as exc:
        # Host code touched machinery the ghost does not model.
        raise SnapshotError(f"ghost replay: {exc}") from exc
    finally:
        machine.htm = real_htm
    for cpu, saved in zip(machine.cpus, snapshot.cpus):
        if len(cpu.frames) != saved[-1]:
            raise SnapshotError(
                f"ghost replay drift: cpu {cpu.cpu_id} rebuilt "
                f"{len(cpu.frames)} frames, snapshot recorded "
                f"{saved[-1]}")


def _overwrite_data_plane(machine, snapshot, restore_policy):
    machine.now = snapshot.now
    machine._live_programs = snapshot.live_programs
    machine._capacity_retries = list(snapshot.capacity_retries)
    machine.stats.restore_state(snapshot.stats)
    machine.memory.restore(snapshot.memory)
    machine.memmodel.restore_state(snapshot.memmodel)
    machine.htm.restore_state(snapshot.htm)
    for cpu, saved, isa_saved in zip(
            machine.cpus, snapshot.cpus, snapshot.isa):
        (cpu.state, cpu.resume_at, cpu.daemon, cpu.wake_tokens,
         cpu.pending_abort, cpu.icount, cpu.handler_icount,
         cpu.dispatch_depth, cpu.send_value, cpu.throw_exc, cpu.result,
         cpu.failure, parked, saved_sends, saved_viol, _) = saved
        cpu.parked.clear()
        cpu.parked.update(parked)
        cpu.saved_sends.clear()
        cpu.saved_sends.update(saved_sends)
        cpu.saved_viol.clear()
        cpu.saved_viol.update(saved_viol)
        cpu.isa.restore_state(isa_saved)
    if restore_policy and snapshot.policy is not None:
        restore_state = getattr(machine.policy, "restore_state", None)
        if restore_state is not None:
            restore_state(snapshot.policy)
    journal = StepJournal()
    journal.entries = snapshot.journal[:snapshot.journal_len]
    machine._journal = journal
    # Resumed runs report engine.steps as prefix + own steps, exactly
    # like the straight line would.
    machine._steps_base = snapshot.journal_len
