"""The conformance campaign: simulator vs. reference semantics, at scale.

Two kinds of cell, both pure functions of small picklable names so the
campaign shards across :class:`~repro.harness.parallel.WorkerPool`
workers exactly like the check/chaos/bench sweeps:

* **Replay cells** (:func:`run_conform_cell`) run one
  ``(program, config, seed)`` case through the ordinary fuzz driver —
  whose oracle battery now ends with the differential replay
  (:func:`repro.spec.replay.check_conformance`) — and report any
  violation.  A clean cell certifies that the simulated execution is
  equivalent to an atomic, instantaneous serial execution of the same
  program.
* **Drain cells** (:func:`run_drain_cell`) exhaustively enumerate a
  litmus program's schedule space with the model checker
  (:func:`repro.check.explore.explore`, unbounded preemptions within
  the program's deviation window) and require the set of observed final
  outcomes to equal — not merely be contained in — the spec-admissible
  set from :func:`repro.spec.outcomes.spec_outcomes`.  An extra outcome
  is a serializability hole; a missing one is lost schedule coverage.

``python -m repro conform`` drives both matrices.
"""

from __future__ import annotations

from repro.check.explore import explore
from repro.check.fuzz import FAST_CONFIGS, run_case
from repro.check.programs import PROGRAMS
from repro.harness.parallel import CaseSpec, run_campaign
from repro.spec.outcomes import spec_outcomes

#: The functional design-space matrix every replay cell sweeps
#: (detection x versioning x nesting; timing configs add nothing to a
#: functional-equivalence argument and triple the wall clock).
CONFORM_CONFIGS = FAST_CONFIGS

#: Deviation-window depth per litmus drain: the deterministic run's
#: step count plus slack, so branching covers the whole program but the
#: enumeration stays litmus-sized.  Measured; a program whose det run
#: grows past its depth fails the drain loudly (missing outcomes).
LITMUS_DEPTHS = {
    "litmus-sb": 48,
    "litmus-mp": 48,
    "litmus-inc": 48,
    "litmus-lb": 48,
    "litmus-corr": 60,
    "litmus-token-handoff": 40,
}


def run_conform_cell(program_name, config_name, seed):
    """One replay cell; returns a picklable summary dict."""
    result = run_case(program_name, config_name, "det", seed)
    return {
        "kind": "cell",
        "name": f"{program_name}:{config_name}:{seed}",
        "skipped": result.skipped,
        "ok": not result.violations,
        "violations": [f"{v.oracle}: {v.detail}"
                       for v in result.violations],
    }


def run_drain_cell(program_name, config_name="lazy-wb-assoc", seed=1,
                   max_depth=None):
    """One litmus drain cell; returns a picklable summary dict."""
    depth = max_depth or LITMUS_DEPTHS[program_name]
    outcomes = set()
    errors = []

    def see(verdict):
        if verdict.error is None:
            outcomes.add(verdict.outcome)
        else:
            errors.append(f"{verdict.deviations}: {verdict.error}")
        if verdict.failed:
            errors.append(
                f"{verdict.deviations}: "
                + "; ".join(f"{v.oracle}: {v.detail}"
                            for v in verdict.violations))

    report = explore(program_name, config_name, seed=seed,
                     preemption_bound=None, max_depth=depth,
                     report=see)
    admissible = spec_outcomes(program_name, seed=seed)
    extra = sorted(outcomes - admissible, key=repr)
    missing = sorted(admissible - outcomes, key=repr)
    problems = list(errors)
    if report.truncated:
        problems.append("drain truncated; not exhaustive")
    problems += [f"outcome outside the admissible set: {o!r}"
                 for o in extra]
    problems += [f"admissible outcome never observed: {o!r}"
                 for o in missing]
    return {
        "kind": "drain",
        "name": f"{program_name}:{config_name}:{seed}",
        "skipped": False,
        "ok": not problems,
        "violations": problems,
        "n_schedules": report.explored,
        "n_outcomes": len(outcomes),
    }


def conform_specs(programs=None, configs=None, seeds=1, litmus=True,
                  cells=True):
    """The campaign's :class:`CaseSpec` list, in canonical order."""
    programs = list(programs) if programs else sorted(PROGRAMS)
    configs = list(configs) if configs else list(CONFORM_CONFIGS)
    specs = []
    if litmus:
        for name in programs:
            if name in LITMUS_DEPTHS:
                specs.append(CaseSpec(
                    runner="repro.spec.conform:run_drain_cell",
                    name=f"drain:{name}",
                    args=(name,)))
    if cells:
        for name in programs:
            for config in configs:
                for seed in range(1, seeds + 1):
                    specs.append(CaseSpec(
                        runner="repro.spec.conform:run_conform_cell",
                        name=f"cell:{name}:{config}:{seed}",
                        args=(name, config, seed)))
    return specs


def _failure_result(spec, message):
    return {"kind": "error", "name": spec.name, "skipped": False,
            "ok": False, "violations": [message]}


def conform_sweep(programs=None, configs=None, seeds=1, litmus=True,
                  cells=True, jobs=1, timeout=None, report=None):
    """Run the campaign; returns the summary dicts in canonical order."""
    specs = conform_specs(programs, configs, seeds, litmus=litmus,
                          cells=cells)
    return run_campaign(specs, jobs=jobs, timeout=timeout, report=report,
                        failure_result=_failure_result)


def summarize_conform(results):
    """(n_run, n_skipped, failures) over a sweep's results."""
    failures = [r for r in results if not r["ok"] and not r["skipped"]]
    n_skipped = sum(1 for r in results if r["skipped"])
    return len(results) - n_skipped, n_skipped, failures
