"""The abstract spec machine: instantaneous transactions on flat memory.

The model deliberately reuses the *program-facing* surfaces of the real
stack — the :mod:`repro.sim.ops` vocabulary, the runtime's
``atomic``/``atomic_open``/``register_*`` generator protocol, and the
``machine.memory``/``machine.cpus`` shape that :class:`SharedArena`,
:class:`SharedHeap`, :class:`TxAlloc` and :class:`TxIo` program against —
so the *same* check/litmus program objects run unmodified on either
machine.  Everything below that surface is different: there is exactly
one memory (a plain word map), a transaction's writes live in a Python
dict until its single publication instant, and scheduling freedom exists
only at *event* boundaries (publishing commits and depth-0 accesses,
the paper's strong-atomicity singletons).

The executor is a coroutine driver.  It advances one thread at a time
and pauses the thread *just before* every event takes effect, which is
what lets the differential replayer (:mod:`repro.spec.replay`) interleave
threads in the simulator's commit order and lets the enumerator
(:mod:`repro.spec.outcomes`) branch over every admissible order.

Mutation hooks
--------------
``mutated(kind)`` enables one of :data:`MUTATION_KINDS` — deliberate
semantic bugs *in the spec* used by the self-tests to prove the
conformance differ has teeth.  They are test-only: nothing in the
library enables them.
"""

from __future__ import annotations

import contextlib
import dataclasses

from repro.common.addr import PRIVATE_BASE, line_of
from repro.common.errors import ReproError
from repro.common.params import LINE, WORD_SIZE
from repro.memsys.memory import MemoryImage
from repro.runtime.core import RESUME
from repro.sim import ops as O

#: Thread states (mirrors :mod:`repro.isa.context`).
RUNNABLE = "runnable"
WAITING = "waiting"
DONE = "done"

#: The deliberate spec bugs the mutation self-test seeds.
MUTATION_KINDS = frozenset({
    "dropped-compensation",   # skip violation handlers on an abort
    "torn-commit",            # outer publication drops one buffered write
    "stale-read",             # in-tx loads ignore the own-write buffer
    "skipped-nested-rollback",  # closed-nested writes escape the parent
})

#: Currently-armed mutations (test-only; see :func:`mutated`).
ACTIVE_MUTATIONS = set()


@contextlib.contextmanager
def mutated(kind):
    """Arm one deliberate spec bug for the duration of the block."""
    if kind not in MUTATION_KINDS:
        raise ValueError(f"unknown spec mutation {kind!r}; "
                         f"choose from {sorted(MUTATION_KINDS)}")
    ACTIVE_MUTATIONS.add(kind)
    try:
        yield
    finally:
        ACTIVE_MUTATIONS.discard(kind)


class SpecError(ReproError):
    """The spec model itself was driven outside its domain."""


class SpecUnsupported(SpecError):
    """The program used machinery the spec does not model (raw ISA ops,
    the daemon scheduler, early release semantics)."""


class SpecStuck(SpecError):
    """A demanded thread is parked and no other thread can unblock it."""


class _SpecRollback(Exception):
    """Thrown into a thread to abort its outer transaction attempt.

    Mirrors a hardware violation targeting ``target``'s nesting level:
    inner frames die as it propagates (open frames restore their
    immediate-store undo right away, like the dispatcher's pre-kill of
    active open levels; closed frames defer theirs to the final
    rollback, like ``xrwsetclear`` after the handler walk), and their
    violation-handler registrations ride along so the walk at the target
    sees the whole stack.
    """

    def __init__(self, target):
        self.target = target
        self.vh = []    # handler entries collected from killed frames
        self.undo = []  # deferred undo entries from killed closed frames


@dataclasses.dataclass(frozen=True)
class _PublishMark(O.Op):
    """Internal op: the pause point just before a publishing commit.

    ``kind`` matches the HTM's :class:`CommitResult` labels ("outer" for
    a publishing closed level, "open" for any open level).
    """

    kind: str


class _Frame:
    """One nesting level of a spec transaction."""

    __slots__ = ("open", "buffer", "undo", "ch", "vh", "ah")

    def __init__(self, open_):
        self.open = open_
        self.buffer = {}  # addr -> value, program order preserved
        self.undo = []    # (addr, previous value) per imst, program order
        self.ch = []      # commit handlers: (fn, args)
        self.vh = []      # violation handlers
        self.ah = []      # abort handlers


class _NullStats:
    """Stat sink with the surface of ``machine.stats`` but no storage."""

    def scope(self, _name):
        return self

    def counter(self, _name, _initial=0):
        return 0

    def add(self, *_args, **_kwargs):
        pass

    def set(self, *_args, **_kwargs):
        pass


class SpecCpu:
    """The spec twin of :class:`repro.isa.context.Cpu`'s program surface."""

    def __init__(self, machine, cpu_id):
        self.machine = machine
        self.cpu_id = cpu_id
        self.daemon = False
        self.result = None
        self.rt = None
        self.stats = _NullStats()
        self.thread = None  # SpecThread once spawned

    # -- op constructors (identical to the real Cpu's) ---------------------

    def load(self, addr):
        return O.Load(addr)

    def store(self, addr, value):
        return O.Store(addr, value)

    def imld(self, addr):
        return O.ImLoad(addr)

    def imst(self, addr, value):
        return O.ImStore(addr, value)

    def imstid(self, addr, value):
        return O.ImStoreId(addr, value)

    def release(self, addr):
        return O.Release(addr)

    def alu(self, cycles=1):
        return O.Alu(cycles)

    def depth(self):
        return len(self.thread.frames) if self.thread is not None else 0


class SpecMachine:
    """Flat sequential memory plus per-CPU observation slots.

    Quacks enough like :class:`repro.sim.engine.Machine` for the
    build-time allocators and the §5 libraries: ``config``, ``memory``
    (a plain :class:`MemoryImage`), ``cpus``, and a permanently-``None``
    ``fault_hooks`` (the spec is the fault-free reference).
    """

    def __init__(self, config):
        self.config = config
        self.memory = MemoryImage()
        self.cpus = [SpecCpu(self, i) for i in range(config.n_cpus)]
        self.fault_hooks = None
        self.stats = _NullStats()

    def unit_of(self, addr):
        """The conflict-tracking unit of ``addr`` under this config."""
        if self.config.granularity == LINE:
            return line_of(addr, self.config.line_size)
        return addr


class _SpecRtState:
    """Per-thread runtime state: just the private scratch allocator."""

    #: Private scratch span per CPU; generous, never reclaimed.
    SPAN = 1 << 20

    def __init__(self, machine, cpu_id):
        self.machine = machine
        self._next = PRIVATE_BASE + (cpu_id + 1) * self.SPAN

    def alloc_private(self, n_words, line_align=False):
        if line_align:
            self._next += (-self._next) % self.machine.config.line_size
        addr = self._next
        self._next += n_words * WORD_SIZE
        return addr


class SpecThread:
    """Driver-side state of one spawned spec program."""

    def __init__(self, t, gen):
        self.t = t
        self.gen = gen
        self.status = RUNNABLE
        self.wake_tokens = 0
        self.frames = []
        #: The op the generator is paused on (not yet executed).
        self.pending_op = None
        #: Value to send on the next resume.
        self.send_value = None
        #: Exception to throw on the next resume (abort injection).
        self.throw_exc = None


@dataclasses.dataclass(frozen=True)
class SpecEvent:
    """One observable serialization point of a spec thread.

    ``kind`` is "outer"/"open" (publishing commits) or "nontx" (a
    depth-0 access — the strong-atomicity singleton).  ``writes`` and
    ``reads`` are frozensets of tracking units, directly comparable to
    a :class:`repro.check.history.TxRecord`'s sets.
    """

    kind: str
    writes: frozenset
    reads: frozenset = frozenset()

    def matches(self, other):
        if self.kind != other.kind or self.writes != other.writes:
            return False
        # Transactional read sets are timing artifacts (aborted sibling
        # reads, watch drops); only singletons pin their read unit.
        return self.kind != "nontx" or self.reads == other.reads

    def __str__(self):
        def fmt(units):
            return "{" + ",".join(hex(u) for u in sorted(units)) + "}"

        if self.kind == "nontx":
            op = f"st{fmt(self.writes)}" if self.writes else f"ld{fmt(self.reads)}"
            return f"nontx {op}"
        return f"{self.kind} w={fmt(self.writes)}"


class SpecRuntime:
    """The spec twin of :class:`repro.runtime.core.Runtime`.

    The generator protocol is identical — programs ``yield from
    rt.atomic(t, body)`` — but there is no ISA underneath: nesting is a
    frame stack, commit is one dict update, and the handler stacks are
    Python lists with the same inherit-on-closed-commit /
    reset-on-publish lifecycle as the real TCB stacks.
    """

    def __init__(self, machine):
        self.machine = machine
        self.threads = {}  # cpu_id -> SpecThread
        self._next_cpu = 0

    # -- thread creation ----------------------------------------------------

    def spawn(self, program, *args, cpu_id=None, daemon=False):
        if cpu_id is None:
            while self._next_cpu in self.threads:
                self._next_cpu += 1
            cpu_id = self._next_cpu
        if cpu_id in self.threads:
            raise SpecError(f"cpu {cpu_id} spawned twice")
        t = self.machine.cpus[cpu_id]
        t.daemon = daemon
        t.rt = _SpecRtState(self.machine, cpu_id)
        thread = SpecThread(t, self._thread_main(t, program, args))
        t.thread = thread
        self.threads[cpu_id] = thread
        return t

    def _thread_main(self, t, program, args):
        t.result = yield from program(t, *args)
        return t.result

    # -- transactions -------------------------------------------------------

    def atomic(self, t, body, *args, open_=False, abort_policy=None):
        """Run ``body`` as one (possibly nested) transaction.

        Instantaneous semantics: buffered writes publish in a single
        event at commit.  A :class:`_SpecRollback` thrown at any pause
        point inside the attempt unwinds to the targeted frame, runs its
        accumulated violation handlers newest-first, undoes immediate
        stores, and restarts the attempt — the spec-level mirror of the
        violation dispatcher.
        """
        thread = t.thread
        while True:
            frame = _Frame(open_)
            thread.frames.append(frame)
            try:
                result = yield from body(t, *args)
                yield from self._commit(t, thread, frame)
                return result
            except _SpecRollback as rollback:
                if rollback.target is not frame:
                    self._collect_killed(thread, frame, rollback)
                    raise
                yield from self._rollback_attempt(t, thread, frame, rollback)

    def atomic_open(self, t, body, *args):
        """Open-nested transaction: publishes at its own commit and its
        effects survive a later abort of the parent."""
        return self.atomic(t, body, *args, open_=True)

    def _commit(self, t, thread, frame):
        publishes = frame.open or len(thread.frames) == 1
        if publishes:
            # Commit handlers run before the publication instant and may
            # register more (the walk re-reads the top, like the TCB walk).
            index = 0
            while index < len(frame.ch):
                fn, args = frame.ch[index]
                index += 1
                yield from fn(t, *args)
            kind = "open" if frame.open else "outer"
            yield _PublishMark(kind)
            # The executor applied the buffer at the mark; a publishing
            # commit makes immediate stores permanent and drops every
            # handler registered inside the level (Runtime.reset_to).
            thread.frames.pop()
            return
        # Closed commit: the parent absorbs everything (writes, undo,
        # handler registrations) and no event is visible.
        thread.frames.pop()
        parent = thread.frames[-1]
        if "skipped-nested-rollback" in ACTIVE_MUTATIONS:
            for addr, value in frame.buffer.items():
                self.machine.memory.write(addr, value)
        else:
            parent.buffer.update(frame.buffer)
        parent.undo.extend(frame.undo)
        parent.ch.extend(frame.ch)
        parent.vh.extend(frame.vh)
        parent.ah.extend(frame.ah)

    def _collect_killed(self, thread, frame, rollback):
        """An inner frame dies as a rollback passes through it."""
        assert thread.frames[-1] is frame
        thread.frames.pop()
        if frame.open:
            # Active open levels are pre-killed before the handler walk
            # (the dispatcher's xrwsetclear of kill+1): their immediate
            # stores revert now, so compensation handlers see the
            # disarmed state.
            for addr, old in reversed(frame.undo):
                self.machine.memory.write(addr, old)
        else:
            # Closed levels roll back after the walk, with the target.
            rollback.undo = frame.undo + rollback.undo
        rollback.vh = frame.vh + rollback.vh

    def _rollback_attempt(self, t, thread, frame, rollback):
        assert thread.frames[-1] is frame
        if "dropped-compensation" not in ACTIVE_MUTATIONS:
            for fn, args in reversed(frame.vh + rollback.vh):
                outcome = yield from fn(t, *args)
                if outcome == RESUME:
                    raise SpecUnsupported(
                        "violation handler requested RESUME; the spec "
                        "cannot resume an inferred abort")
        for addr, old in reversed(frame.undo + rollback.undo):
            self.machine.memory.write(addr, old)
        thread.frames.pop()

    # -- handler registration (generators, like the real runtime) -----------

    def register_commit_handler(self, t, fn, *args):
        return self._register(t, "ch", fn, args)

    def register_violation_handler(self, t, fn, *args):
        return self._register(t, "vh", fn, args)

    def register_abort_handler(self, t, fn, *args):
        return self._register(t, "ah", fn, args)

    def _register(self, t, stack, fn, args):
        frames = t.thread.frames
        if not frames:
            raise SpecError(f"{stack} handler registered outside a "
                            "transaction")
        getattr(frames[-1], stack).append((fn, args))
        return
        yield  # pragma: no cover - makes this a generator


class SpecExecutor:
    """Advances spec threads op-by-op, pausing at events.

    ``advance`` interprets ops until the thread reaches an event (a
    publication or depth-0 access, left *pending* — not yet applied),
    parks, or finishes.  ``pure=True`` restricts execution to
    memory-free ops (alu, fences, wakes, token-consuming yields): the
    run-ahead mode used to let a committed thread deliver its wakes
    without perturbing memory order.
    """

    def __init__(self, machine, runtime):
        self.machine = machine
        self.runtime = runtime

    @property
    def threads(self):
        return self.runtime.threads

    # -- wake/park ----------------------------------------------------------

    def wake(self, cpu_id):
        thread = self.threads.get(cpu_id)
        if thread is None:
            return
        if thread.status == WAITING:
            thread.status = RUNNABLE
            thread.pending_op = None  # the pending YieldCpu completes
            thread.send_value = None
        else:
            thread.wake_tokens += 1

    # -- the interpreter ----------------------------------------------------

    def advance(self, thread, pure=False):
        """Run ``thread`` until an event, park, completion, or (pure
        mode) a blocked op.  Returns "event" | "parked" | "done" |
        "blocked" | "progress" ("blocked" after >=1 op executed)."""
        progressed = False
        while True:
            if thread.status == DONE:
                return "done"
            if thread.status == WAITING:
                return "parked"
            if thread.pending_op is None:
                try:
                    if thread.throw_exc is not None:
                        exc, thread.throw_exc = thread.throw_exc, None
                        op = thread.gen.throw(exc)
                    else:
                        op = thread.gen.send(thread.send_value)
                except StopIteration:
                    thread.status = DONE
                    return "done"
                except _SpecRollback:
                    raise SpecError(
                        "rollback escaped the outermost transaction")
                thread.send_value = None
                thread.pending_op = op
            disposition, value = self._execute(thread, thread.pending_op,
                                               pure)
            if disposition == "ok":
                thread.pending_op = None
                thread.send_value = value
                progressed = True
                continue
            if disposition == "blocked":
                return "progress" if progressed else "blocked"
            return disposition  # "event" | "parked"

    def _execute(self, thread, op, pure):
        """Execute one op (or refuse).  Returns (disposition, value)."""
        memory = self.machine.memory
        if isinstance(op, _PublishMark):
            return ("blocked" if pure else "event"), None
        if isinstance(op, (O.Alu, O.Fence)):
            return "ok", None
        if isinstance(op, O.Wake):
            self.wake(op.cpu_id)
            return "ok", None
        if isinstance(op, O.YieldCpu):
            if thread.wake_tokens > 0:
                thread.wake_tokens -= 1
                return "ok", None
            thread.status = WAITING
            return "parked", None
        if isinstance(op, O.Load):
            if pure:
                return "blocked", None
            if thread.frames:
                return "ok", self._tx_load(thread, op.addr)
            return "event", None  # strong-atomicity read singleton
        if isinstance(op, O.Store):
            if pure:
                return "blocked", None
            if thread.frames:
                thread.frames[-1].buffer[op.addr] = op.value
                return "ok", None
            return "event", None  # strong-atomicity write singleton
        if isinstance(op, O.ImLoad):
            if pure:
                return "blocked", None
            return "ok", memory.read(op.addr)
        if isinstance(op, O.ImStore):
            if pure:
                return "blocked", None
            if thread.frames:
                thread.frames[-1].undo.append((op.addr, memory.read(op.addr)))
            memory.write(op.addr, op.value)
            return "ok", None
        if isinstance(op, O.ImStoreId):
            if pure:
                return "blocked", None
            memory.write(op.addr, op.value)
            return "ok", None
        if isinstance(op, O.Release):
            # The spec tracks no read sets; early release is a no-op.
            return "ok", None
        raise SpecUnsupported(f"op {op!r} has no spec semantics")

    def _tx_load(self, thread, addr):
        if "stale-read" not in ACTIVE_MUTATIONS:
            for frame in reversed(thread.frames):
                if addr in frame.buffer:
                    return frame.buffer[addr]
        return self.machine.memory.read(addr)

    # -- events -------------------------------------------------------------

    def pending_event(self, thread):
        """Describe the event ``thread`` is paused at."""
        op = thread.pending_op
        unit = self.machine.unit_of
        if isinstance(op, _PublishMark):
            units = frozenset(unit(a) for a in thread.frames[-1].buffer)
            return SpecEvent(op.kind, units)
        if isinstance(op, O.Store):
            return SpecEvent("nontx", frozenset({unit(op.addr)}))
        if isinstance(op, O.Load):
            return SpecEvent("nontx", frozenset(), frozenset({unit(op.addr)}))
        raise SpecError(f"no pending event (pending op {op!r})")

    def accept(self, thread):
        """Apply the pending event's effect; the thread stays paused
        just after it (resume on the next ``advance``)."""
        op = thread.pending_op
        memory = self.machine.memory
        if isinstance(op, _PublishMark):
            items = list(thread.frames[-1].buffer.items())
            if (op.kind == "outer" and "torn-commit" in ACTIVE_MUTATIONS
                    and len(items) >= 2):
                items = items[:-1]
            for addr, value in items:
                memory.write(addr, value)
            thread.pending_op = None
            thread.send_value = None
        elif isinstance(op, O.Store):
            memory.write(op.addr, op.value)
            thread.pending_op = None
            thread.send_value = None
        elif isinstance(op, O.Load):
            thread.pending_op = None
            thread.send_value = memory.read(op.addr)
        else:
            raise SpecError(f"no pending event to accept ({op!r})")

    def inject_abort(self, thread):
        """Abort the outer transaction attempt the thread is inside.

        Models a hardware violation delivered against the outermost
        level; used by the replayer when the simulator's history shows
        an aborted attempt the fault-free spec path would not take.
        """
        if not thread.frames:
            raise SpecError("inject_abort outside a transaction")
        thread.pending_op = None
        thread.send_value = None
        thread.throw_exc = _SpecRollback(thread.frames[0])

    # -- demand-driven driving ---------------------------------------------

    def demand(self, thread):
        """Advance ``thread`` to its next event.  Returns the
        :class:`SpecEvent` (pending, not applied) or None if the thread
        completed.  Raises :class:`SpecStuck` on an unbreakable park."""
        while True:
            result = self.advance(thread, pure=False)
            if result == "event":
                return self.pending_event(thread)
            if result == "done":
                return None
            if not self.unblock(thread):
                raise SpecStuck(
                    f"cpu{thread.t.cpu_id} is parked and no runnable "
                    "thread can wake it")

    def unblock(self, thread):
        """Pure-run other threads until ``thread`` unparks (True) or no
        further pure progress is possible (False)."""
        while thread.status == WAITING:
            progressed = False
            for other in self.threads.values():
                if other is thread or other.status != RUNNABLE:
                    continue
                result = self.advance(other, pure=True)
                if result in ("progress", "parked", "done"):
                    progressed = True
                if thread.status == RUNNABLE:
                    return True
            if not progressed:
                return False
        return True

    def step(self, thread):
        """Enumeration step: advance to the next event and apply it.
        Returns "event", "done", or "parked"."""
        result = self.advance(thread, pure=False)
        if result == "event":
            self.accept(thread)
            return "event"
        return result


def build_spec_execution(program, config):
    """Set a program object up on a fresh spec machine.

    Returns ``(machine, executor)``; the program's threads are spawned
    and ready to drive.  The caller owns the program instance (its
    host-side observation state — ``reads`` lists, SimFile contents —
    ends up there).
    """
    from repro.mem.layout import SharedArena

    machine = SpecMachine(config)
    runtime = SpecRuntime(machine)
    arena = SharedArena(machine)
    program.setup(machine, runtime, arena)
    return machine, SpecExecutor(machine, runtime)
