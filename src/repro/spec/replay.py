"""Guided differential replay: simulator history vs. spec semantics.

The serializability oracle proves every committed history is equivalent
to *some* serial order — and because violations are delivered eagerly
enough that no transaction commits past a conflicting publication, the
commit sequence itself is a valid serial witness.  The replayer exploits
that: it re-executes the *same program* on the spec machine, advancing
each thread to its next event exactly when the simulator's history says
that thread committed, and checks that the spec thread produces the same
event (same commit kind, same written units).  Final memory and per-CPU
observations are then compared program-defined outcome against outcome.

Aborted attempts need one inference step.  The committed history keeps
open-nested commits of attempts whose *parent* later aborted (that is
the point of open nesting), so the spec thread — which never aborts on
its own — would run past them.  When the next spec event disagrees with
the guided record, the replayer *injects* an abort (bounded by the
number of aborted frames the simulator recorded for that CPU), which
runs the spec-level compensation walk and restarts the attempt — exactly
the §6b.6 recovery the simulator performed.  If no injection budget
remains and the events still disagree, the disagreement is real and is
reported as a ``conformance`` violation: the strongest signal the
checking stack has, because it means the simulator computed an answer
no atomic, instantaneous execution could produce.

Soundness boundary: the replay assumes the history is *complete* (the
run finished without error) and *fault-free at the semantic level* —
the recoverable chaos kinds must be absorbed by the runtime and
therefore must still conform; the ``+broken`` variants corrupt committed
state and are exactly what this oracle exists to catch.
"""

from __future__ import annotations

import dataclasses

from repro.spec.model import (
    DONE,
    SpecError,
    SpecEvent,
    SpecStuck,
    SpecUnsupported,
    build_spec_execution,
)

#: Extra abort injections allowed beyond the simulator's aborted-frame
#: count (one attempt can roll back through several frames).
ABORT_MARGIN = 2


def freeze(value):
    """Canonicalize an outcome value into a hashable, comparable form."""
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(freeze(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(freeze(v) for v in value))
    return value


def record_event(record, machine):
    """The :class:`SpecEvent` a simulator TxRecord corresponds to."""
    if record.kind == "nontx":
        return SpecEvent("nontx", frozenset(record.writes),
                         frozenset(record.reads))
    return SpecEvent(record.kind, frozenset(record.writes))


@dataclasses.dataclass
class ConformanceReport:
    """Result of one guided replay."""

    program: str
    divergences: list
    n_events: int = 0
    n_injected: int = 0
    spec_outcome: object = None
    sim_outcome: object = None

    @property
    def ok(self):
        return not self.divergences


def replay_history(sim_program, sim_machine, history, spec_program=None):
    """Replay ``history`` under spec semantics; return a report.

    ``sim_program`` is the already-run program object (host-side
    observations intact); a fresh ``spec_program`` twin is built from
    the registry unless one is supplied.
    """
    from repro.check.programs import make_program

    if spec_program is None:
        spec_program = make_program(sim_program.name, seed=sim_program.seed)
    report = ConformanceReport(sim_program.name, [])
    machine, executor = build_spec_execution(spec_program,
                                             sim_machine.config)

    budgets = {}
    for record in history.aborted:
        budgets[record.cpu] = budgets.get(record.cpu, 0) + 1
    for cpu_id in executor.threads:
        budgets[cpu_id] = budgets.get(cpu_id, 0) + ABORT_MARGIN

    def diverge(detail):
        report.divergences.append(detail)
        return report

    # -- the guided event loop -------------------------------------------
    for record in history.committed:
        thread = executor.threads.get(record.cpu)
        if thread is None:
            return diverge(
                f"cpu{record.cpu}: history has a commit but the spec "
                "spawned no thread there")
        expected = record_event(record, machine)
        while True:
            try:
                got = executor.demand(thread)
            except SpecStuck as stuck:
                return diverge(f"{stuck} (while awaiting {expected})")
            except SpecError as err:
                return diverge(f"cpu{record.cpu}: spec error {err} "
                               f"(while awaiting {expected})")
            if got is None:
                return diverge(
                    f"cpu{record.cpu}: spec thread finished before "
                    f"producing {expected}")
            if got.matches(expected):
                executor.accept(thread)
                report.n_events += 1
                break
            if budgets.get(record.cpu, 0) > 0 and thread.frames:
                # The simulator aborted an attempt here; reproduce it.
                budgets[record.cpu] -= 1
                report.n_injected += 1
                executor.inject_abort(thread)
                continue
            return diverge(
                f"cpu{record.cpu}: spec produced [{got}] where the "
                f"simulator committed [{expected}] "
                "(no aborted attempt can explain the difference)")

    # -- drain: every thread must finish without further events ----------
    for cpu_id, thread in executor.threads.items():
        while thread.status != DONE:
            try:
                result = executor.advance(thread, pure=False)
            except SpecError as err:
                return diverge(f"cpu{cpu_id}: spec error {err} during "
                               "drain")
            if result == "event":
                return diverge(
                    f"cpu{cpu_id}: spec produced an extra event "
                    f"[{executor.pending_event(thread)}] the simulator "
                    "never committed")
            if result == "done":
                break
            if result == "parked":
                if thread.t.daemon:
                    break
                if not executor.unblock(thread):
                    return diverge(
                        f"cpu{cpu_id}: spec thread still parked after "
                        "the last committed event")

    # -- final observation comparison -------------------------------------
    report.sim_outcome = freeze(sim_program.outcome(sim_machine))
    report.spec_outcome = freeze(spec_program.outcome(machine))
    if report.sim_outcome != report.spec_outcome:
        diverge("final outcome mismatch: "
                f"sim {report.sim_outcome!r} != spec "
                f"{report.spec_outcome!r}")
    return report


def check_conformance(program, machine, history, error, fault=None):
    """Oracle entry point: one violation per spec disagreement.

    Returns ``[]`` for programs the spec does not model (they declare
    ``spec_supported = False``) and for histories containing waived
    (released/resumed) records, which have no serial witness to replay.
    """
    from repro.check.oracles import OracleViolation

    if not getattr(program, "spec_supported", False):
        return []
    if error is not None:
        return [OracleViolation(
            "conformance",
            f"run did not complete ({type(error).__name__}: {error}); "
            "the spec admits no incomplete outcome")]
    if any(r.waived for r in history.committed):
        return []
    try:
        report = replay_history(program, machine, history)
    except SpecUnsupported:
        return []
    return [OracleViolation("conformance", detail)
            for detail in report.divergences]
