"""Exhaustive enumeration of a program's spec-admissible outcomes.

Under instantaneous-transaction semantics the only scheduling freedom is
the *order of events* (publishing commits and depth-0 singletons), so
the admissible outcome set of a program is exactly the set of final
observations over all interleavings of thread event sequences.  The
enumerator does a depth-first search over "which thread produces the
next event", re-executing the program from scratch for every prefix
(spec runs are microseconds; litmus programs have a handful of events).

This is the gate for the model checker: an exhaustive explorer drain of
a litmus program must produce *exactly* this outcome set — anything
extra is a simulator bug, anything missing is lost schedule coverage.
"""

from __future__ import annotations

from repro.common.params import functional_config
from repro.spec.model import (
    DONE,
    RUNNABLE,
    SpecError,
    build_spec_execution,
)
from repro.spec.replay import freeze

#: Safety valve: an enumeration exploring more prefixes than this is a
#: sign the program is not litmus-sized.
MAX_PREFIXES = 200_000


def spec_outcomes(program_name, seed=1, config=None, max_prefixes=None):
    """The frozenset of admissible (frozen) outcomes of a program.

    ``config`` only affects event granularity bookkeeping, never the
    outcome set; the default functional config is fine for any program.
    """
    from repro.check.programs import make_program

    if config is None:
        config = functional_config()
    limit = max_prefixes or MAX_PREFIXES
    outcomes = set()
    stack = [()]  # prefixes of cpu-id choices still to expand
    explored = 0
    while stack:
        prefix = stack.pop()
        explored += 1
        if explored > limit:
            raise SpecError(
                f"{program_name}: outcome enumeration exceeded "
                f"{limit} prefixes; not litmus-sized")
        program = make_program(program_name, seed=seed)
        machine, executor = build_spec_execution(program, config)
        # Replay the prefix.
        dead_end = False
        for cpu_id in prefix:
            if executor.step(executor.threads[cpu_id]) not in (
                    "event", "done", "parked"):
                dead_end = True  # pragma: no cover - defensive
                break
        if dead_end:  # pragma: no cover - defensive
            continue
        # Branch over every thread that can act next.
        choices = [cpu_id for cpu_id, thread in executor.threads.items()
                   if thread.status == RUNNABLE]
        if choices:
            stack.extend(prefix + (cpu_id,) for cpu_id in choices)
            continue
        if any(thread.status != DONE and not thread.t.daemon
               for thread in executor.threads.values()):
            outcomes.add(("spec-deadlock", prefix))
            continue
        outcomes.add(freeze(program.outcome(machine)))
    return frozenset(outcomes)
