"""``repro.spec``: the executable reference semantics.

An abstract operational model of the paper's programmer-visible
transactional semantics: transactions execute *instantaneously* against a
flat sequential memory — no caches, no versioning hardware, no cycle
timing, no scheduler.  The model is small enough to trust by inspection,
which is what makes it usable as an oracle:

* :mod:`repro.spec.model` — the spec machine, runtime, and op
  interpreter (closed/open nesting, immediate stores, handler stacks,
  compensation, park/wake).
* :mod:`repro.spec.replay` — the guided differential replayer: re-run a
  program under spec semantics in the order of the simulator's committed
  history and flag any disagreement (:func:`check_conformance`).
* :mod:`repro.spec.outcomes` — exhaustive enumeration of the admissible
  serial outcomes of a program (used to gate the explorer's drains).
* :mod:`repro.spec.conform` — the ``python -m repro conform`` sweep.
"""

from repro.spec.model import (  # noqa: F401
    MUTATION_KINDS,
    SpecExecutor,
    SpecMachine,
    SpecRuntime,
    mutated,
)
from repro.spec.outcomes import spec_outcomes  # noqa: F401
from repro.spec.replay import check_conformance, freeze, replay_history  # noqa: F401
