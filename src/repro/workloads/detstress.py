"""Conflict-detection stress kernel: the bench harness's flagship.

Every simulated step of this workload is designed to hit the conflict
detector as hard as possible, so the run isolates the asymptotic gap
between the naive full-scan detectors (O(n_cpus × nesting levels) per
access) and the reverse-index detectors (O(actual owners), usually a
single dictionary miss):

* **Deep nesting** — each round opens ``depth + 1`` nested transactions
  (depth 8 with the bench's ``max_nesting=8`` config), so a naive eager
  scan iterates every victim's full level stack on every access.
* **Store-dominated bursts** — the innermost transaction issues a long
  run of stores; a naive eager store scans each victim's read-sets *and*
  write-sets (``levels_touching``), twice the work of a load.
* **Small private footprints** — each thread's burst lands on its own
  few cache lines, so the indexed detectors answer almost every access
  with the nobody-owns-it fast path, and closed-nested commits merge
  only a handful of units (index maintenance stays cheap).
* **One contended line** — a shared accumulator at the innermost level
  keeps the conflict-resolution path honest (real stalls/violations
  happen) and gives :meth:`verify` an end-to-end invariant.

Both detector implementations must produce bit-for-bit identical cycle
counts on it; the bench harness runs it twice (indexed, then
``config.naive_detection=True``) and reports the steps/sec ratio.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.mem.array import LineArray, WordArray
from repro.workloads.base import Workload


class DetectionStressKernel(Workload):
    """Deep-nesting, store-heavy conflict-detection stress."""

    name = "detstress"

    #: Deep nesting plus eager detection — the flagship bench machine.
    config_overrides = {"detection": "eager", "max_nesting": 8}

    #: Outer iterations per thread (scaled by ``scale``, min 1).
    rounds = 4
    #: Stores issued inside the innermost transaction per round.
    burst = 160
    #: Nesting depth below the outermost transaction (total levels =
    #: ``depth + 1``; the bench config must allow that much nesting).
    depth = 7
    #: Words in each thread's private array (first ``depth + 1`` are the
    #: per-level touch words, the rest the burst window).
    words = 24

    def setup(self, machine, runtime, arena):
        self.rt = runtime
        self.priv = [WordArray(arena, self.words, line_align=True)
                     for _ in range(self.n_threads)]
        self.accum = LineArray(arena, 1)
        for tid in range(self.n_threads):
            runtime.spawn(self._program, tid, cpu_id=tid)

    def _rounds(self):
        return max(1, int(self.rounds * self.scale))

    def _program(self, t, tid):
        addrs = [self.priv[tid].addr(k) for k in range(self.words)]
        for _ in range(self._rounds()):
            yield from self.rt.atomic(t, self._level, tid, addrs, self.depth)
        return tid

    def _level(self, t, tid, addrs, depth):
        # Touch one word per level so every victim's read/write stack is
        # populated at every nesting level while the bursts run.
        yield t.store(addrs[depth], depth)
        if depth > 0:
            yield from self.rt.atomic(t, self._level, tid, addrs, depth - 1)
        else:
            window = self.words - (self.depth + 1)
            base = self.depth + 1
            for j in range(self.burst):
                yield t.store(addrs[base + j % window], j)
            value = yield from self.accum.get(t, 0)
            yield from self.accum.set(t, 0, value + 1)

    def verify(self, machine):
        got = machine.memory.read(self.accum.addr(0))
        want = self.n_threads * self._rounds()
        if got != want:
            raise ReproError(f"detstress accumulator {got} != {want}")
        for tid in range(self.n_threads):
            for level_word in range(self.depth + 1):
                got = machine.memory.read(self.priv[tid].addr(level_word))
                if got != level_word:
                    raise ReproError(
                        f"detstress thread {tid} level word {level_word} "
                        f"holds {got}")
