"""The conditional-scheduling microbenchmark (paper Sections 5 and 7).

Producer/consumer pairs communicate through bounded queues using the
Atomos-style watch/retry scheduler (Figure 3): a consumer finding its
queue empty watches the tail counter and retries (parking its CPU); a
producer finding it full watches the head counter.  The scheduler's
violation handler wakes the right thread when the watched counter is
committed by the other side.  One CPU is dedicated to the scheduler; the
remaining CPUs are split into producer/consumer pairs.

The paper reports scalable performance for conditional scheduling: in the
common case threads never block (the queue has slack), and when they do,
wakeups are targeted — conflict detection on the watched address — not
broadcast, so adding pairs adds throughput.
"""

from __future__ import annotations

import random

from repro.common.errors import ReproError
from repro.mem.queue import BoundedQueue
from repro.runtime.condsync import CondScheduler
from repro.workloads.base import Workload


class CondSyncWorkload(Workload):
    """``n_pairs`` producer/consumer pairs plus one scheduler CPU.

    ``n_threads`` counts the worker threads (2 per pair); the machine
    needs one extra CPU for the scheduler.
    """

    name = "condsync"

    ITEMS_PER_PAIR = 8
    QUEUE_CAPACITY = 3
    WORK_ALU = 400

    def __init__(self, n_pairs, seed=1, scale=1.0):
        super().__init__(n_pairs * 2, seed=seed, scale=scale)
        self.n_pairs = n_pairs

    def min_cpus(self):
        return self.n_threads + 1

    def setup(self, machine, runtime, arena):
        self._runtime = runtime
        self.cond = CondScheduler(runtime, arena,
                                  queue_capacity=16 * self.n_pairs + 16)
        self._items = max(1, int(self.ITEMS_PER_PAIR * self.scale))
        self.queues = [
            BoundedQueue(arena, self.QUEUE_CAPACITY, item_words=1)
            for _ in range(self.n_pairs)
        ]
        # Pre-drawn per-iteration compute jitter decorrelates the pairs.
        rng = random.Random(self.seed)
        self._jitter = [
            [rng.randrange(self.WORK_ALU) for _ in range(2 * self._items)]
            for _ in range(self.n_pairs)
        ]
        self.cond.spawn_scheduler(cpu_id=0)
        for pair in range(self.n_pairs):
            runtime.spawn(self._producer, pair, cpu_id=1 + 2 * pair)
            runtime.spawn(self._consumer, pair, cpu_id=2 + 2 * pair)

    # ------------------------------------------------------------------

    def _producer(self, t, pair):
        cond = self.cond
        queue = self.queues[pair]
        for i in range(1, self._items + 1):
            def body(t, i=i):
                ok = yield from queue.try_enqueue(t, [i])
                if not ok:
                    # Full: sleep until the consumer advances the head.
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, queue.head_addr)
                    yield from cond.retry(t)
            yield from cond.atomic(t, body)
            yield t.alu(self.WORK_ALU + self._jitter[pair][i - 1])
        yield from cond.cancel_watches(t)
        return ("produced", pair)

    def _consumer(self, t, pair):
        cond = self.cond
        queue = self.queues[pair]
        got = []
        # Consumers start late: the queue fills and the producer parks,
        # exercising the watch/retry/wake path at least once per pair.
        yield t.alu(12 * self.WORK_ALU)
        for i in range(self._items):
            def body(t):
                item = yield from queue.try_dequeue(t)
                if item is None:
                    # Empty: sleep until the producer advances the tail.
                    yield from cond.register_cancel(t)
                    yield from cond.watch(t, queue.tail_addr)
                    yield from cond.retry(t)
                return item[0]
            got.append((yield from cond.atomic(t, body)))
            yield t.alu(self.WORK_ALU + self._jitter[pair][self._items + i])
        yield from cond.cancel_watches(t)
        return got

    # ------------------------------------------------------------------

    def verify(self, machine):
        for pair in range(self.n_pairs):
            consumer_cpu = 2 + 2 * pair
            got = machine.cpus[consumer_cpu].result
            expected = list(range(1, self._items + 1))
            if got != expected:
                raise ReproError(
                    f"condsync pair {pair}: consumed {got}, expected "
                    f"{expected} (lost or duplicated wakeups)")
