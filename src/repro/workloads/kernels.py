"""Scientific-kernel workloads (paper Section 7.1, Figure 5).

The paper speculatively parallelizes loops from SPECcpu2000 (``swim``,
``tomcatv``), SPLASH/SPLASH-2 (``barnes``, ``fmm``, ``mp3d``, ``water``)
and Java Grande (``moldyn``), then applies closed nesting "mainly to
update reduction variables within larger transactions".  We reproduce the
*transactional structure* of each benchmark with a parameterized kernel:

* an **outer transaction** per loop chunk doing private compute (each
  thread owns a slice of the grid/particle arrays, so this phase never
  conflicts) and, for the tree codes, read-only traversal of shared data;
* zero or more **collision updates**: read-modify-writes to randomly
  chosen *shared* cells mid-transaction (the mp3d particle/cell pattern —
  the dominant conflict source there);
* a **reduction update** near the end of the outer transaction: a small
  closed-nested transaction adding into the shared reduction variables
  (swim's ``ucheck/vcheck/pcheck``, tomcatv's residuals, water/moldyn's
  energy terms).

With nesting disabled (``config.flatten``) the same program degrades to
exactly the conventional-HTM flat execution the paper compares against.

Every kernel carries a serializability invariant: each reduction cell
must end at the total number of outer transactions, and the collision
cells must sum to the total number of collision updates.  Every benchmark
run is therefore also a correctness check.

The per-kernel parameters were chosen to mirror each benchmark's
qualitative conflict profile (e.g. mp3d = many collision updates over a
small cell pool; barnes/fmm = large read-only shared tree, rare writes),
not its instruction mix; see DESIGN.md for the substitution argument.
"""

from __future__ import annotations

import random

from repro.common.errors import ReproError
from repro.mem.array import LineArray, WordArray
from repro.workloads.base import Workload


class ReductionKernel(Workload):
    """The parameterized loop kernel described in the module docstring."""

    #: Override in subclasses.
    name = "kernel"
    outer_work = 50        # private grid updates per outer transaction
    work_alu = 3           # ALU cycles per grid update
    shared_reads = 0       # read-only shared-tree reads per outer tx
    n_reductions = 1       # shared reduction variables
    n_collisions = 0       # shared-cell read-modify-writes per outer tx
    n_cells = 256          # size of the shared collision-cell pool
    collision_alu = 2
    reduction_alu = 8      # ALU cycles per reduction-variable update
    total_outer = 64       # total outer transactions across all threads
    #: Maximum per-iteration compute variance (pre-drawn): real loop
    #: chunks take variable time, which decorrelates the threads'
    #: commit points instead of piling every endgame onto the token.
    jitter = None          # default: half the private compute phase

    def setup(self, machine, runtime, arena):
        n = self.n_threads
        total = max(1, int(self.total_outer * self.scale))
        per_thread = [total // n + (1 if i < total % n else 0)
                      for i in range(n)]
        self._total_outer = total

        # Per-thread private grid slices (line-aligned so threads never
        # false-share).
        self.grid = [
            WordArray(arena, self.outer_work, line_align=True)
            for _ in range(n)
        ]
        self.reductions = WordArray(arena, max(1, self.n_reductions))
        # Shared read-only structure (the barnes/fmm tree stand-in).
        self.tree = WordArray(
            arena, max(1, self.shared_reads * 4),
            initial=[7] * max(1, self.shared_reads * 4))
        # One cell per cache line: disjoint cell updates must not conflict
        # through line-granularity tracking (false sharing would change the
        # workload's semantics, not just its performance).
        self.cells = LineArray(arena, max(1, self.n_cells))

        # Pre-draw every random decision so re-execution after rollback
        # replays identical accesses (determinism).
        rng = random.Random(self.seed)
        self._plans = []
        for tid in range(n):
            plan = []
            jitter = self.jitter
            if jitter is None:
                jitter = max(1, self.outer_work * self.work_alu // 2)
            for _ in range(per_thread[tid]):
                plan.append({
                    "cells": [rng.randrange(self.n_cells)
                              for _ in range(self.n_collisions)],
                    "tree": [rng.randrange(self.tree.length)
                             for _ in range(self.shared_reads)],
                    "jitter": rng.randrange(jitter),
                })
            self._plans.append(plan)

        for tid in range(n):
            runtime.spawn(self._program, tid, cpu_id=tid)
        self._runtime = runtime

    # -- the per-thread program ------------------------------------------------

    def _program(self, t, tid):
        rt = self._runtime
        for step in self._plans[tid]:
            yield from rt.atomic(t, self._outer_body, tid, step)
        return tid

    def _outer_body(self, t, tid, step):
        grid = self.grid[tid]
        # Variable-duration private compute (see ``jitter``).
        yield t.alu(1 + step["jitter"])
        # Private compute phase: long and conflict-free.
        for j in range(self.outer_work):
            value = yield from grid.get(t, j)
            yield t.alu(self.work_alu)
            yield from grid.set(t, j, value + 1)
        # Shared read-only traversal (tree codes).
        acc = 0
        for index in step["tree"]:
            acc += yield from self.tree.get(t, index)
            yield t.alu(1)
        # Collision updates: one closed-nested transaction touching the
        # shared cells this particle/molecule interacts with, near the end
        # of the outer transaction (mp3d/water/moldyn style: the particle
        # move is long and private, the cell update short and contended).
        rt = self._runtime
        if step["cells"]:
            yield from rt.atomic(t, self._collisions_body, step["cells"])
        # Reduction update near the end of the outer transaction: the
        # paper's canonical closed-nesting use.
        if self.n_reductions:
            yield from rt.atomic(t, self._reduction_body)

    def _collisions_body(self, t, cells):
        for cell in cells:
            value = yield from self.cells.get(t, cell)
            yield t.alu(self.collision_alu)
            yield from self.cells.set(t, cell, value + 1)

    def _reduction_body(self, t):
        for r in range(self.n_reductions):
            yield t.alu(self.reduction_alu)
            yield from self.reductions.add(t, r, 1)

    # -- invariants ---------------------------------------------------------------

    def verify(self, machine):
        memory = machine.memory
        for r in range(self.n_reductions):
            got = memory.read(self.reductions.addr(r))
            if got != self._total_outer:
                raise ReproError(
                    f"{self.name}: reduction {r} = {got}, expected "
                    f"{self._total_outer} (serializability broken)")
        if self.n_collisions:
            total = sum(memory.read(self.cells.addr(i))
                        for i in range(self.n_cells))
            expected = self._total_outer * self.n_collisions
            if total != expected:
                raise ReproError(
                    f"{self.name}: collision sum {total} != {expected}")


# ---------------------------------------------------------------------------
# The seven named kernels
# ---------------------------------------------------------------------------

class SwimKernel(ReductionKernel):
    """SPECcpu2000 swim: shallow-water stencil; three global check sums
    (ucheck/vcheck/pcheck) accumulated at the end of each chunk."""

    name = "swim"
    outer_work = 96
    work_alu = 40
    shared_reads = 0
    n_reductions = 3
    n_collisions = 0
    n_cells = 256
    collision_alu = 2
    total_outer = 32


class TomcatvKernel(ReductionKernel):
    """SPECcpu2000 tomcatv: mesh generation; two residual maxima updated
    at the end of each row chunk."""

    name = "tomcatv"
    outer_work = 112
    work_alu = 40
    shared_reads = 0
    n_reductions = 2
    n_collisions = 0
    n_cells = 256
    collision_alu = 2
    total_outer = 32


class BarnesKernel(ReductionKernel):
    """SPLASH-2 barnes: N-body force computation; long read-only walks of
    the shared tree, rare shared-cell writes, one energy reduction."""

    name = "barnes"
    outer_work = 80
    work_alu = 40
    shared_reads = 32
    n_reductions = 1
    n_collisions = 1
    n_cells = 1024
    collision_alu = 4
    total_outer = 32


class FmmKernel(ReductionKernel):
    """SPLASH-2 fmm: fast multipole method; like barnes with a shallower
    traversal and slightly more frequent shared writes."""

    name = "fmm"
    outer_work = 88
    work_alu = 40
    shared_reads = 20
    n_reductions = 1
    n_collisions = 2
    n_cells = 1024
    collision_alu = 4
    total_outer = 32


class WaterKernel(ReductionKernel):
    """SPLASH water-nsquared: molecular dynamics; inter-molecule updates
    on a moderate shared pool, potential/virial reductions at the end."""

    name = "water"
    outer_work = 84
    work_alu = 40
    shared_reads = 0
    n_reductions = 2
    n_collisions = 3
    n_cells = 256
    collision_alu = 8
    total_outer = 32


class MoldynKernel(ReductionKernel):
    """Java Grande moldyn: force accumulation with moderately contended
    neighbour updates plus epot/vir reductions."""

    name = "moldyn"
    outer_work = 76
    work_alu = 40
    shared_reads = 0
    n_reductions = 2
    n_collisions = 5
    n_cells = 96
    collision_alu = 10
    total_outer = 32


class Mp3dKernel(ReductionKernel):
    """SPLASH mp3d: rarefied-fluid particle simulation — the paper's
    dramatic case.  Many particle/cell collision updates per outer
    transaction over a small cell pool make conflicts frequent; with
    nesting, each collision retries alone instead of rolling back the
    whole particle batch."""

    name = "mp3d"
    outer_work = 120
    work_alu = 40
    shared_reads = 0
    n_reductions = 1
    n_collisions = 16
    n_cells = 32
    collision_alu = 16
    total_outer = 32


#: All Figure 5 scientific kernels in the paper's bar order.
SCIENTIFIC_KERNELS = [
    BarnesKernel,
    FmmKernel,
    MoldynKernel,
    Mp3dKernel,
    SwimKernel,
    TomcatvKernel,
    WaterKernel,
]
