"""Workload framework: build, run, verify.

A :class:`Workload` owns its shared-memory layout and thread programs.
The harness runs the same workload object class under different machine
configurations (sequential 1-CPU, flat 8-CPU, nested 8-CPU, ...) and
compares simulated cycle counts — the methodology behind every figure in
Section 7.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.mem.layout import SharedArena
from repro.runtime.core import Runtime
from repro.sim.engine import Machine


class Workload:
    """Base class: subclasses define layout and per-thread programs."""

    #: Short name used in reports.
    name = "workload"

    #: Config overrides this workload needs on top of the harness's
    #: default machine (e.g. detstress wants eager detection and deep
    #: nesting); the CLI's profile/trace commands apply them.
    config_overrides = {}

    def __init__(self, n_threads, seed=1, scale=1.0):
        self.n_threads = n_threads
        self.seed = seed
        self.scale = scale

    # -- to override -------------------------------------------------------

    def setup(self, machine, runtime, arena):
        """Allocate shared structures and spawn threads."""
        raise NotImplementedError

    def verify(self, machine):
        """Check the final memory state; raise on corruption.

        Workloads with a cheap correctness invariant implement this so
        every benchmark run doubles as a correctness test.
        """

    # -- driver ------------------------------------------------------------

    def run(self, config, max_cycles=2_000_000_000, policy=None,
            instruments=()):
        """Build a machine, run this workload on it, verify, and return
        the machine (stats under ``machine.stats``).

        ``policy`` selects the engine's ready-CPU schedule
        (:mod:`repro.sim.schedule`); None keeps the deterministic default.

        ``instruments`` is a sequence of factories, each called with the
        built machine (e.g. ``Tracer``, ``CycleProfiler``, or a lambda
        configuring either); the resulting instruments are detached in
        reverse attach order before the machine is returned, even when
        setup/run/verify raises.
        """
        if config.n_cpus < self.min_cpus():
            raise ReproError(
                f"{self.name} needs >= {self.min_cpus()} CPUs, config has "
                f"{config.n_cpus}")
        machine = Machine(config, policy=policy)
        runtime = Runtime(machine)
        arena = SharedArena(machine)
        attached = [factory(machine) for factory in instruments]
        try:
            self.setup(machine, runtime, arena)
            machine.run(max_cycles=max_cycles)
            self.verify(machine)
        finally:
            for instrument in reversed(attached):
                instrument.detach()
        return machine

    def min_cpus(self):
        return self.n_threads
