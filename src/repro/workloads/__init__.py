"""Workloads: the Section 7 evaluation programs, rebuilt synthetically."""

from repro.workloads.base import Workload
from repro.workloads.condsync_bench import CondSyncWorkload
from repro.workloads.detstress import DetectionStressKernel
from repro.workloads.iobench import IoLogWorkload
from repro.workloads.jbb import JbbWorkload
from repro.workloads.kernels import (
    SCIENTIFIC_KERNELS,
    BarnesKernel,
    FmmKernel,
    MoldynKernel,
    Mp3dKernel,
    ReductionKernel,
    SwimKernel,
    TomcatvKernel,
    WaterKernel,
)

__all__ = [
    "BarnesKernel",
    "CondSyncWorkload",
    "DetectionStressKernel",
    "IoLogWorkload",
    "FmmKernel",
    "JbbWorkload",
    "MoldynKernel",
    "Mp3dKernel",
    "ReductionKernel",
    "SCIENTIFIC_KERNELS",
    "SwimKernel",
    "TomcatvKernel",
    "WaterKernel",
    "Workload",
]
