"""The SPECjbb2000-like warehouse workload (paper Section 7.1).

The paper parallelizes SPECjbb2000 inside one warehouse: customer tasks
(new order, payment, order status) manipulate shared B-trees holding
customer, order, and stock information, plus a global order-ID counter.
Three code versions are evaluated:

* **flat** — one outer transaction per operation, no nesting (we obtain
  it by running the nested program on a machine with
  ``config.flatten=True``, which is exactly what a conventional HTM
  does);
* **closed** (`variant="closed"`) — B-tree searches and updates run as
  closed-nested transactions, so a conflict inside a small tree
  operation no longer rolls back the whole business operation;
* **open** (`variant="open"`) — additionally, the global order-ID is
  generated in an *open-nested* transaction: the counter commits
  immediately, so parallel new-order operations stop conflicting through
  it.  No compensation is registered — order IDs must be unique, not
  sequential (paper §7.1), so an ID burned by a rolled-back operation is
  simply skipped.

Conflict sources mirror the original: the rightmost order-tree leaf
(order IDs are monotonically increasing), stock rows, customer rows, and
(until the open version) the order-ID counter itself.
"""

from __future__ import annotations

import random

from repro.common.errors import ReproError
from repro.mem.btree import BTree
from repro.workloads.base import Workload

NEW_ORDER = "new_order"
PAYMENT = "payment"
STATUS = "status"

#: Operation mix (matches SPECjbb's dominant transaction types).
_MIX = [(NEW_ORDER, 0.5), (PAYMENT, 0.3), (STATUS, 0.2)]


class JbbWorkload(Workload):
    """One warehouse, ``n_threads`` customer-task threads."""

    name = "SPECjbb2000"

    N_CUSTOMERS = 128
    N_ITEMS = 128
    ITEMS_PER_ORDER = 3
    TOTAL_OPS = 96
    BUSINESS_ALU = 1200   # per-operation non-memory business logic

    def __init__(self, n_threads, seed=1, scale=1.0, variant="closed"):
        super().__init__(n_threads, seed=seed, scale=scale)
        if variant not in ("closed", "open"):
            raise ReproError(f"unknown jbb variant {variant!r}")
        self.variant = variant
        self.name = f"SPECjbb2000-{variant}"

    # ------------------------------------------------------------------

    def setup(self, machine, runtime, arena):
        self._runtime = runtime
        total_ops = max(1, int(self.TOTAL_OPS * self.scale))

        self.customers = BTree(arena,
                               capacity_nodes=self.N_CUSTOMERS // 2 + 16)
        self.stock = BTree(arena, capacity_nodes=self.N_ITEMS // 2 + 16)
        self.orders = BTree(
            arena, capacity_nodes=16 + 2 * total_ops)
        self.order_id_addr = arena.alloc_word(1, isolate=True)

        self._prepopulate(machine)

        rng = random.Random(self.seed)
        self._plans = [[] for _ in range(self.n_threads)]
        self._expected_orders = 0
        self._expected_payment_total = 0
        for i in range(total_ops):
            op = self._draw_op(rng)
            plan = {
                "op": op,
                "customer": rng.randrange(1, self.N_CUSTOMERS + 1),
                "items": [rng.randrange(1, self.N_ITEMS + 1)
                          for _ in range(self.ITEMS_PER_ORDER)],
                "amount": rng.randrange(1, 50),
                "probe": rng.randrange(1, total_ops + 1),
            }
            if op == NEW_ORDER:
                self._expected_orders += 1
            elif op == PAYMENT:
                self._expected_payment_total += plan["amount"]
            self._plans[i % self.n_threads].append(plan)

        for tid in range(self.n_threads):
            runtime.spawn(self._program, tid, cpu_id=tid)

    def _draw_op(self, rng):
        x = rng.random()
        acc = 0.0
        for op, p in _MIX:
            acc += p
            if x < acc:
                return op
        return STATUS

    def _prepopulate(self, machine):
        """Host-side initial population (the loader, not a transaction)."""
        from repro.mem.hostexec import host

        for c in range(1, self.N_CUSTOMERS + 1):
            host(self.customers.insert, machine.memory, c, 1000)
        for i in range(1, self.N_ITEMS + 1):
            host(self.stock.insert, machine.memory, i, 10_000)

    # ------------------------------------------------------------------
    # The customer-task program
    # ------------------------------------------------------------------

    def _program(self, t, tid):
        rt = self._runtime
        for plan in self._plans[tid]:
            body = {NEW_ORDER: self._new_order,
                    PAYMENT: self._payment,
                    STATUS: self._status}[plan["op"]]
            yield from rt.atomic(t, body, plan)
        return tid

    def _nested(self, t, body, *args):
        """A transparent library call: closed-nested transaction."""
        result = yield from self._runtime.atomic(t, body, *args)
        return result

    def _bump_counter(self, t):
        oid = yield t.load(self.order_id_addr)
        yield t.store(self.order_id_addr, oid + 1)
        return oid

    def _create_order(self, t, customer):
        """The order-creation library call: generate a unique order ID
        and record the order row — one composable closed-nested module.

        In the closed variant the counter read merges into the parent
        read-set, so every parallel new-order operation still conflicts
        through the counter until the parent commits (paper: "all new
        order tasks executing in parallel will experience conflicts on
        the global order counter").  In the open variant the ID
        generation is open-nested: the counter commits immediately and
        independently, and an ID burned by a later rollback is simply
        skipped — IDs must be unique, not sequential (§7.1)."""
        if self.variant == "open":
            oid = yield from self._runtime.atomic_open(t, self._bump_counter)
        else:
            oid = yield from self._bump_counter(t)
        yield from self.orders.insert(t, oid, customer)
        return oid

    def _new_order(self, t, plan):
        # Customer credit check (tree search, nested library call).
        def find(t):
            value = yield from self.customers.lookup(t, plan["customer"])
            return value
        balance = yield from self._nested(t, find)
        if balance is None:
            raise ReproError("missing customer row")
        # Business logic (pricing, validation): long and private.
        yield t.alu(self.BUSINESS_ALU)
        # Decrement stock for all but the last line item.
        def take(t, item):
            result = yield from self.stock.update(t, item, -1)
            return result
        for item in plan["items"][:-1]:
            yield from self._nested(t, take, item)
        yield t.alu(self.BUSINESS_ALU // 4)
        # Create the order (ID generation + record, a nested library
        # call), then finish the remaining line item and paperwork.  The
        # closed variant keeps the merged counter read in the parent
        # read-set across this tail; the open variant does not.
        yield from self._nested(t, self._create_order, plan["customer"])
        yield from self._nested(t, take, plan["items"][-1])
        yield t.alu(self.BUSINESS_ALU // 8)

    def _payment(self, t, plan):
        def pay(t):
            result = yield from self.customers.update(
                t, plan["customer"], plan["amount"])
            return result
        yield t.alu(self.BUSINESS_ALU // 2)
        yield from self._nested(t, pay)
        yield t.alu(self.BUSINESS_ALU // 2)

    def _status(self, t, plan):
        def look(t):
            balance = yield from self.customers.lookup(t, plan["customer"])
            order = yield from self.orders.lookup(t, plan["probe"])
            return balance, order
        result = yield from self._nested(t, look)
        yield t.alu(self.BUSINESS_ALU)
        return result

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def verify(self, machine):
        memory = machine.memory
        orders = self.orders.items_host(memory)
        if len(orders) != self._expected_orders:
            raise ReproError(
                f"jbb: {len(orders)} orders recorded, expected "
                f"{self._expected_orders}")
        ids = [k for k, _ in orders]
        if len(set(ids)) != len(ids):
            raise ReproError("jbb: duplicate order ids")
        final_counter = memory.read(self.order_id_addr)
        if self.variant == "closed" and machine.config.flatten is False:
            if final_counter != self._expected_orders + 1:
                raise ReproError(
                    f"jbb-closed: counter {final_counter}, expected "
                    f"{self._expected_orders + 1}")
        if final_counter < self._expected_orders + 1:
            raise ReproError("jbb: counter ran backwards")
        stock_total = sum(v for _, v in self.stock.items_host(memory))
        expected_stock = (self.N_ITEMS * 10_000
                          - self._expected_orders * self.ITEMS_PER_ORDER)
        if stock_total != expected_stock:
            raise ReproError(
                f"jbb: stock total {stock_total} != {expected_stock}")
        balance_total = sum(v for _, v in self.customers.items_host(memory))
        expected_balance = (self.N_CUSTOMERS * 1000
                            + self._expected_payment_total)
        if balance_total != expected_balance:
            raise ReproError(
                f"jbb: balances {balance_total} != {expected_balance}")
