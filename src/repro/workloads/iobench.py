"""The transactional-I/O microbenchmark (paper Section 7.2).

"Each thread repeatedly performs a small computation within a transaction
and outputs a message into a log."  The transactional library buffers the
output in a private buffer and registers a commit handler that performs
the real write; a violated transaction discards the buffer automatically.

The paper reports scalable performance: buffering decouples the threads,
so throughput grows with CPU count even though all threads log to the
same file.  The contended resource is only the file-size word, touched
inside the commit handler's open-nested transaction.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.mem.array import LineArray
from repro.runtime.txio import SimFile, TxIo
from repro.workloads.base import Workload


class IoLogWorkload(Workload):
    """N threads computing and logging transactionally."""

    name = "txio-log"

    #: Computation per transaction (cycles) and log records per thread.
    WORK_ALU = 400
    RECORDS_PER_THREAD = 8
    #: Private state words updated per transaction.
    PRIVATE_WORK = 24

    def setup(self, machine, runtime, arena):
        self._runtime = runtime
        self.io = TxIo(runtime)
        self.log = SimFile(arena, "log")
        self.scratch = [
            LineArray(arena, self.PRIVATE_WORK // 4 or 1)
            for _ in range(self.n_threads)
        ]
        self._records = max(1, int(self.RECORDS_PER_THREAD * self.scale))
        for tid in range(self.n_threads):
            runtime.spawn(self._program, tid, cpu_id=tid)

    def _program(self, t, tid):
        rt = self._runtime
        for i in range(self._records):
            yield from rt.atomic(t, self._body, tid, i)
        return tid

    def _body(self, t, tid, i):
        scratch = self.scratch[tid]
        for j in range(self.PRIVATE_WORK):
            value = yield from scratch.get(t, j % scratch.length)
            yield t.alu(self.WORK_ALU // self.PRIVATE_WORK)
            yield from scratch.set(t, j % scratch.length, value + 1)
        yield from self.io.write(t, self.log, [tid * 1_000_000 + i])

    def verify(self, machine):
        expected = sorted(
            tid * 1_000_000 + i
            for tid in range(self.n_threads)
            for i in range(self._records)
        )
        if sorted(self.log.data) != expected:
            raise ReproError(
                f"txio-log: log holds {len(self.log.data)} records, "
                f"expected {len(expected)} distinct ones")
        size = machine.memory.read(self.log.size_addr)
        if size != len(expected):
            raise ReproError("txio-log: size metadata out of sync")
