"""The machine-wide HTM engine.

:class:`HtmSystem` owns, per CPU, the read-/write-sets, the speculative
version manager, and the nesting-scheme capacity model; machine-wide it
owns the commit token and the conflict detector.  It implements the
*functional* semantics of every Table 2 instruction; cycle costs are
charged by the ISA layer using the work counts returned from here.
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import CapacityAbort, IsaError
from repro.common.params import LAZY, LINE
from repro.htm.conflict import PROCEED, make_detector
from repro.htm.nesting import NestingSchemeBase, make_nesting_scheme
from repro.htm.rwset import ConflictIndex, RwSets
from repro.htm.versioning import make_version_manager

#: Transaction status values held in ``xstatus`` (paper Table 1).
ACTIVE = "active"
VALIDATED = "validated"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclasses.dataclass
class LevelInfo:
    """Per-nesting-level transaction info mirrored into ``xstatus``."""

    txid: int
    open: bool
    status: str = ACTIVE
    began_at: int = 0


@dataclasses.dataclass
class CommitResult:
    """What ``xcommit`` did, for timing and bookkeeping."""

    kind: str                  # "closed", "open", "outer", "flattened"
    written_words: set = dataclasses.field(default_factory=set)
    merge_work: int = 0
    ended_outermost: bool = False


class TxState:
    """All transactional hardware state of one CPU."""

    def __init__(self, cpu_id, config, memory, stats, index=None):
        self.cpu_id = cpu_id
        scope = stats.scope(f"cpu{cpu_id}.htm")
        self.stats = scope
        # Per-access event counts kept as plain ints and folded into the
        # stats tree by flush_stats() at run end (see Cache.flush_stats).
        self.n_loads = 0
        self.n_stores = 0
        self.rwsets = RwSets(config, index=index, cpu_id=cpu_id)
        self.versions = make_version_manager(config, memory, scope)
        self.nesting = make_nesting_scheme(config, scope)
        # Pre-bound per-access methods: the component objects are fixed
        # for the machine's lifetime, and load/store resolve these once
        # per simulated memory instruction.
        self._tx_load = self.versions.tx_load
        self._tx_store = self.versions.tx_store
        self._add_read = self.rwsets.add_read_unit
        self._add_write = self.rwsets.add_write_unit
        self._note_access = self.nesting.note_access
        self.levels = []          # stack of LevelInfo, index 0 = level 1
        self.flatten_extra = 0    # subsumed inner transactions when flattening
        self.timestamp = 0        # outermost xbegin cycle (eager priority)

    def depth(self):
        return len(self.levels)

    def in_tx(self):
        return bool(self.levels)

    def current(self):
        if not self.levels:
            raise IsaError(f"cpu {self.cpu_id}: no active transaction")
        return self.levels[-1]

    def is_validated(self):
        return any(info.status == VALIDATED for info in self.levels)

    def flush_stats(self):
        """Fold deferred per-access counts into the stats tree."""
        if self.n_loads:
            self.stats.add("loads", self.n_loads)
            self.n_loads = 0
        if self.n_stores:
            self.stats.add("stores", self.n_stores)
            self.n_stores = 0
        self.versions.flush_stats()

    # -- snapshot support ---------------------------------------------------

    def snapshot_state(self):
        return (
            self.n_loads,
            self.n_stores,
            tuple((info.txid, info.open, info.status, info.began_at)
                  for info in self.levels),
            self.flatten_extra,
            self.timestamp,
            self.rwsets.snapshot_state(),
            self.versions.snapshot_state(),
            self.nesting.snapshot_state(),
        )

    def restore_state(self, saved):
        """Restore onto this TxState's own component objects (they are
        pre-bound into ``_tx_load`` etc. and must not be replaced)."""
        (self.n_loads, self.n_stores, levels, self.flatten_extra,
         self.timestamp, rwsets, versions, nesting) = saved
        self.levels = [
            LevelInfo(txid=txid, open=open_, status=status,
                      began_at=began_at)
            for txid, open_, status, began_at in levels
        ]
        self.rwsets.restore_state(rwsets)
        self.versions.restore_state(versions)
        self.nesting.restore_state(nesting)


class HtmSystem:
    """Functional HTM semantics for the whole machine."""

    def __init__(self, config, memory, stats):
        self.config = config
        self.memory = memory
        self.stats = stats
        #: Machine-wide reverse conflict index (unit -> per-CPU level
        #: masks), maintained by every CPU's RwSets and probed by the
        #: indexed detectors.
        self.index = ConflictIndex()
        self.states = [
            TxState(cpu_id, config, memory, stats, self.index)
            for cpu_id in range(config.n_cpus)
        ]
        self.detector = make_detector(config, self.states,
                                      stats.scope("htm"), self.index)
        # Unit mapping, inlined into load/store: the per-access method
        # chain (rwsets.unit_of -> addr.line_of) is measurable there.
        self._line_units = config.granularity == LINE
        self._line_size = config.line_size
        # Lazy detectors only act at commit time — their on_load/on_store
        # are the base-class PROCEED stubs, so load/store skip the call
        # entirely (an eager machine pays it, a lazy one should not).
        self._access_checks = config.detection != LAZY
        self._next_txid = 1
        #: CPU holding machine-wide serial mode (the virtualization
        #: fallback hook), or None.
        self.serial_owner = None
        #: Currently-validated publishing transactions: (cpu, level) keys.
        #: xvalidate admits a transaction only if it conflicts with no
        #: member, which is what guarantees a validated transaction can
        #: never be violated by a prior memory access (paper §6.1) while
        #: still letting non-conflicting commits — and the commit handlers
        #: running between xvalidate and xcommit — proceed in parallel.
        self.validated = {}

    def attach_violation_sink(self, sink):
        self.detector.attach_sink(sink)

    # ------------------------------------------------------------------
    # Transaction definition
    # ------------------------------------------------------------------

    def begin(self, cpu_id, open_, now):
        """``xbegin`` / ``xbegin_open``.  Returns the new nesting level."""
        state = self.states[cpu_id]
        if self.config.flatten and state.in_tx():
            # Conventional HTM: subsume the inner transaction entirely.
            state.flatten_extra += 1
            state.stats.add("begins_flattened")
            return state.depth()
        if state.depth() >= self.config.max_nesting:
            raise CapacityAbort(
                state.depth(),
                f"nesting depth {state.depth() + 1} exceeds hardware limit "
                f"{self.config.max_nesting}")
        level = state.depth() + 1
        txid = self._next_txid
        self._next_txid += 1
        state.levels.append(LevelInfo(txid=txid, open=open_, began_at=now))
        state.rwsets.open_level(level)
        state.versions.begin_level(level)
        if level == 1:
            state.timestamp = now
        state.stats.add("begins_open" if open_ else "begins")
        return level

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------

    def load(self, cpu_id, addr):
        """Transactional load.  Returns (action, value)."""
        state = self.states[cpu_id]
        level = len(state.levels)
        unit = (addr - addr % self._line_size) if self._line_units else addr
        if self._access_checks:
            action = self.detector.on_load(cpu_id, unit)
            if action != PROCEED:
                return action, None
        if level >= 1:
            state._add_read(level, unit)
            state._note_access(level, addr, NestingSchemeBase.READ)
        value = state._tx_load(level, addr)
        state.n_loads += 1
        return PROCEED, value

    def store(self, cpu_id, addr, value):
        """Transactional store.  Returns the detector action."""
        state = self.states[cpu_id]
        level = len(state.levels)
        unit = (addr - addr % self._line_size) if self._line_units else addr
        if self._access_checks:
            action = self.detector.on_store(cpu_id, unit)
            if action != PROCEED:
                return action
        if level >= 1:
            state._add_write(level, unit)
            state._note_access(level, addr, NestingSchemeBase.WRITE)
            state._tx_store(level, addr, value)
        else:
            # Non-transactional store: update memory and, in a lazy
            # machine, behave like a one-word commit so strong atomicity
            # holds (other transactions that read this word are violated).
            self.memory.write(addr, value)
            if self.config.detection == LAZY:
                self.detector.on_commit(cpu_id, {unit})
        state.n_stores += 1
        return PROCEED

    def im_load(self, cpu_id, addr):
        return self.states[cpu_id].versions.im_load(addr)

    def im_store(self, cpu_id, addr, value):
        state = self.states[cpu_id]
        state.versions.im_store(state.depth(), addr, value)

    def im_store_id(self, cpu_id, addr, value):
        self.states[cpu_id].versions.im_store_id(addr, value)

    def release(self, cpu_id, addr):
        """Early release from the current read-set (paper §4.7)."""
        state = self.states[cpu_id]
        if not state.in_tx():
            return False
        released = state.rwsets.release(state.depth(), addr)
        if released:
            state.stats.add("releases")
        return released

    # ------------------------------------------------------------------
    # Two-phase commit
    # ------------------------------------------------------------------

    def _commit_publishes(self, state):
        """True if committing the current level writes shared memory."""
        info = state.current()
        return info.open or state.depth() == 1

    def validate(self, cpu_id):
        """``xvalidate``.  Returns True on success, False to stall."""
        state = self.states[cpu_id]
        if state.flatten_extra:
            # Flattened inner transaction: its validate is a no-op; only
            # the real outermost commit arbitrates.
            return True
        info = state.current()
        if info.status == VALIDATED:
            return True
        if (self.serial_owner is not None and self.serial_owner != cpu_id
                and self._commit_publishes(state)):
            # Serial mode: publishing commits of other CPUs are held off.
            state.stats.add("validate_stalls")
            return False
        if self._commit_publishes(state) and self.config.detection == LAZY:
            # Admission control: a transaction validates only if it cannot
            # violate (or be violated by) any already-validated one.
            level = state.depth()
            my_reads = state.rwsets.reads_at(level)
            my_writes = state.rwsets.writes_at(level)
            for other_id, other_level in self.validated:
                if other_id == cpu_id:
                    continue
                other = self.states[other_id].rwsets
                other_reads = other.reads_at(other_level)
                other_writes = other.writes_at(other_level)
                if (my_writes & other_reads or my_writes & other_writes
                        or my_reads & other_writes):
                    state.stats.add("validate_stalls")
                    return False
            self.validated[(cpu_id, level)] = True
        info.status = VALIDATED
        state.stats.add("validates")
        return True

    def devalidate(self, cpu_id):
        """Retract the current level's successful ``xvalidate``.

        The §6.1-safe way to force an abort *between* xvalidate and
        xcommit: the transaction first leaves the validated set (so the
        "a validated transaction can never be violated" invariant is
        preserved — it is no longer validated when the violation lands)
        and only then may a violation be posted against it.  Models a
        commit-token loss after a successful arbitration, e.g. a dropped
        coherence message.  Returns the devalidated level, or 0 if the
        current level was not validated.
        """
        state = self.states[cpu_id]
        if not state.in_tx():
            return 0
        info = state.current()
        if info.status != VALIDATED:
            return 0
        level = state.depth()
        info.status = ACTIVE
        self.validated.pop((cpu_id, level), None)
        state.stats.add("devalidates")
        return level

    def commit(self, cpu_id):
        """``xcommit``.  Returns a :class:`CommitResult`."""
        state = self.states[cpu_id]
        if state.flatten_extra:
            state.flatten_extra -= 1
            state.stats.add("commits_flattened")
            return CommitResult(kind="flattened")
        info = state.current()
        level = state.depth()
        if info.status not in (ACTIVE, VALIDATED):
            raise IsaError(f"cpu {cpu_id}: commit in status {info.status}")
        if not info.open and level > 1:
            merge = state.rwsets.merge_into_parent(level)
            state.versions.commit_closed(level)
            state.nesting.commit_closed(level)
            state.levels.pop()
            state.stats.add("commits_closed")
            info.status = COMMITTED
            return CommitResult(kind="closed", merge_work=merge)
        # Outermost or open-nested commit: publish to shared memory.
        written_units = set(state.rwsets.writes_at(level))
        written_words = state.versions.commit_to_memory(level)
        state.rwsets.discard(level)
        if info.open:
            state.nesting.commit_open(level)
        else:
            state.nesting.rollback(level)  # gang clear level-1 tracking
        state.levels.pop()
        self.validated.pop((cpu_id, level), None)
        info.status = COMMITTED
        # Conflict detection sees the publication (lazy mode posts
        # violations here; eager mode already resolved everything).
        self.detector.on_commit(cpu_id, written_units)
        kind = "open" if info.open else "outer"
        state.stats.add(f"commits_{kind}")
        return CommitResult(
            kind=kind,
            written_words=written_words,
            ended_outermost=not state.in_tx(),
        )

    # ------------------------------------------------------------------
    # Rollback
    # ------------------------------------------------------------------

    def rollback_to(self, cpu_id, target_level, now=0):
        """Discard all speculative state at levels >= ``target_level`` and
        restart ``target_level`` as a fresh, active transaction.

        This is the hardware side of the dispatcher's ``xrwsetclear`` +
        ``xregrestore`` sequence; multi-level rollback gang-clears the
        deeper levels (paper §6.3).  Returns undo work units performed.
        """
        state = self.states[cpu_id]
        if target_level < 1 or target_level > state.depth():
            raise IsaError(
                f"cpu {cpu_id}: rollback to level {target_level} with "
                f"depth {state.depth()}")
        # Flattened inner transactions all collapse with the real one.
        state.flatten_extra = 0
        restart_open = state.levels[target_level - 1].open
        work = 0
        for level in range(state.depth(), target_level - 1, -1):
            info = state.levels[level - 1]
            self.validated.pop((cpu_id, level), None)
            work += state.versions.rollback(level)
            state.rwsets.discard(level)
            info.status = ABORTED
            state.stats.add("rollbacks")
        state.stats.add(f"rollbacks_to_level{target_level}")
        state.nesting.rollback(target_level)
        del state.levels[target_level - 1:]
        # Restart the target level as a fresh transaction (the register
        # checkpoint restore jumps back to just after xbegin).
        txid = self._next_txid
        self._next_txid += 1
        state.levels.append(
            LevelInfo(txid=txid, open=restart_open, began_at=now))
        state.rwsets.open_level(target_level)
        state.versions.begin_level(target_level)
        state.stats.add("restarts")
        return work

    def abandon_all(self, cpu_id):
        """Discard every active level without restarting (thread exit or
        ``retry`` parking).  Returns undo work units."""
        state = self.states[cpu_id]
        if not state.in_tx():
            return 0
        work = 0
        for level in range(state.depth(), 0, -1):
            self.validated.pop((cpu_id, level), None)
            work += state.versions.rollback(level)
            state.rwsets.discard(level)
        state.nesting.clear_all()
        state.levels.clear()
        state.flatten_extra = 0
        state.stats.add("abandons")
        return work

    def flush_stats(self):
        """Fold every CPU's deferred per-access counts into the stats
        tree (the engine calls this when a run ends)."""
        for state in self.states:
            state.flush_stats()

    # ------------------------------------------------------------------
    # Snapshot support (repro.sim.snapshot)
    # ------------------------------------------------------------------

    def snapshot_state(self):
        return (
            self._next_txid,
            self.serial_owner,
            dict(self.validated),
            self.index.snapshot_state(),
            tuple(state.snapshot_state() for state in self.states),
            self.detector.snapshot_state(),
        )

    def restore_state(self, saved):
        """Restore every transactional component in place.  The index
        and per-CPU component objects stay identical (detectors and
        TxStates hold direct aliases into them)."""
        (self._next_txid, self.serial_owner, validated, index,
         states, detector) = saved
        self.validated.clear()
        self.validated.update(validated)
        self.index.restore_state(index)
        for state, state_saved in zip(self.states, states):
            state.restore_state(state_saved)
        self.detector.restore_state(detector)

    # ------------------------------------------------------------------
    # Serial mode (the virtualization fallback hook, DESIGN.md §6b)
    # ------------------------------------------------------------------

    def try_acquire_serial(self, cpu_id):
        """Acquire machine-wide serialization once all other validated
        transactions have drained; False if not yet available."""
        if self.serial_owner is not None:
            return self.serial_owner == cpu_id
        if any(owner != cpu_id for owner, _ in self.validated):
            return False
        self.serial_owner = cpu_id
        self.states[cpu_id].stats.add("serial_acquires")
        return True

    def release_serial(self, cpu_id):
        if self.serial_owner != cpu_id:
            raise IsaError(
                f"cpu {cpu_id} releasing serial mode owned by "
                f"{self.serial_owner}")
        self.serial_owner = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def depth(self, cpu_id):
        return self.states[cpu_id].depth()

    def xstatus(self, cpu_id):
        """The ``xstatus`` register view (paper Table 1)."""
        state = self.states[cpu_id]
        if not state.in_tx():
            return {"txid": 0, "type": None, "status": None, "level": 0}
        info = state.current()
        return {
            "txid": info.txid,
            "type": "open" if info.open else "closed",
            "status": info.status,
            "level": state.depth() + state.flatten_extra,
        }
