"""Hardware transactional memory engine.

Versioning (write-buffer / undo-log), conflict detection (lazy / eager),
nesting cache schemes (multi-tracking / associativity), the commit token,
and the machine-wide :class:`~repro.htm.system.HtmSystem`.
"""

from repro.htm.conflict import (
    PROCEED,
    SELF_ABORT,
    STALL,
    EagerDetector,
    LazyDetector,
    NaiveEagerDetector,
    NaiveLazyDetector,
    Violation,
    make_detector,
)
from repro.htm.nesting import (
    AssociativityScheme,
    MultiTrackingScheme,
    make_nesting_scheme,
)
from repro.htm.rwset import ConflictIndex, RwSets
from repro.htm.system import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    VALIDATED,
    CommitResult,
    HtmSystem,
    LevelInfo,
    TxState,
)
from repro.htm.token import CommitToken
from repro.htm.versioning import (
    UndoLogVersioning,
    WriteBufferVersioning,
    make_version_manager,
)

__all__ = [
    "ABORTED",
    "ACTIVE",
    "AssociativityScheme",
    "COMMITTED",
    "CommitResult",
    "CommitToken",
    "ConflictIndex",
    "EagerDetector",
    "HtmSystem",
    "LazyDetector",
    "LevelInfo",
    "MultiTrackingScheme",
    "NaiveEagerDetector",
    "NaiveLazyDetector",
    "PROCEED",
    "RwSets",
    "SELF_ABORT",
    "STALL",
    "TxState",
    "UndoLogVersioning",
    "VALIDATED",
    "Violation",
    "WriteBufferVersioning",
    "make_detector",
    "make_nesting_scheme",
    "make_version_manager",
]
