"""Hardware nesting-scheme models (paper Figure 4 and Section 6.3).

Functionally, read-/write-set tracking lives in :mod:`repro.htm.rwset`;
these classes model the *capacity and merge-cost* consequences of how the
cache physically tracks multiple nested transactions:

* :class:`MultiTrackingScheme` (Fig. 4a) — every resident transactional
  line carries R/W bits for each nesting level.  Capacity is one cache
  slot per distinct line; closed-nested commit must merge (OR) the bit
  vectors, which the hardware does lazily.
* :class:`AssociativityScheme` (Fig. 4b) — each (line, level) pair
  occupies its own way in the set, so a line written by three nested
  transactions occupies three ways; capacity runs out when a set's ways
  are exhausted.  Rollback gang-invalidates NL = i entries; closed commit
  relabels NL = i to NL = i-1, merging duplicates lazily.

Overflow raises :class:`~repro.common.errors.CapacityAbort`, the
architectural hook behind which a virtualization scheme would sit
(paper §6.3.3).

The geometry modelled is the private L2 (the larger of the two levels in
which the paper tracks transactional state).
"""

from __future__ import annotations

from collections import defaultdict

from repro.common.errors import CapacityAbort


class NestingSchemeBase:
    """Common bookkeeping for both schemes."""

    #: Accessor kinds.
    READ = "read"
    WRITE = "write"

    def __init__(self, config, stats):
        self._config = config
        self._stats = stats
        self.n_sets = config.l2_sets
        self.assoc = config.l2_assoc
        # note_access runs per transactional load/store; keep its line
        # math free of config-attribute hops.
        self._line_size = config.line_size

    def _set_index(self, line_addr):
        return (line_addr // self._line_size) % self.n_sets

    def note_access(self, level, addr, kind):
        """Record a transactional access; raise CapacityAbort on overflow."""
        raise NotImplementedError

    def snapshot_state(self):
        """Capture tracking state (repro.sim.snapshot)."""
        raise NotImplementedError

    def restore_state(self, saved):
        raise NotImplementedError

    def commit_closed(self, level):
        """Merge level into level-1.  Returns merge work units (lines)."""
        raise NotImplementedError

    def commit_open(self, level):
        """Gang-clear level's tracking state (writes go to memory)."""
        raise NotImplementedError

    def rollback(self, level):
        """Gang-invalidate level's tracking state."""
        raise NotImplementedError

    def clear_all(self):
        raise NotImplementedError

    def footprint(self):
        """Number of (line[, level]) tracking entries currently held."""
        raise NotImplementedError


class MultiTrackingScheme(NestingSchemeBase):
    """Per-line R/W bit vectors over all nesting levels (Fig. 4a)."""

    def __init__(self, config, stats):
        super().__init__(config, stats)
        # line -> [read_mask, write_mask]; presence means the line holds
        # transactional state and pins a cache slot.
        self._lines = {}
        self._sets = defaultdict(set)  # set index -> resident tx lines

    def snapshot_state(self):
        return (
            {line: list(masks) for line, masks in self._lines.items()},
            {index: set(lines) for index, lines in self._sets.items()},
        )

    def restore_state(self, saved):
        lines, sets = saved
        self._lines = {line: list(masks) for line, masks in lines.items()}
        self._sets = defaultdict(set)
        for index, members in sets.items():
            self._sets[index] = set(members)

    def note_access(self, level, addr, kind):
        line = addr - addr % self._line_size
        bit = 1 << (level - 1)
        if line not in self._lines:
            set_index = self._set_index(line)
            if len(self._sets[set_index]) >= self.assoc:
                self._stats.add("nesting.overflows")
                raise CapacityAbort(
                    level, f"multi-tracking set {set_index} full")
            self._sets[set_index].add(line)
            self._lines[line] = [0, 0]
        masks = self._lines[line]
        masks[0 if kind == self.READ else 1] |= bit

    def _drop_if_clear(self, line):
        masks = self._lines[line]
        if not masks[0] and not masks[1]:
            del self._lines[line]
            self._sets[self._set_index(line)].discard(line)

    def commit_closed(self, level):
        bit = 1 << (level - 1)
        parent_bit = 1 << (level - 2) if level >= 2 else 0
        merged = 0
        for line in list(self._lines):
            masks = self._lines[line]
            if masks[0] & bit or masks[1] & bit:
                merged += 1
                for i in range(2):
                    if masks[i] & bit:
                        masks[i] = (masks[i] & ~bit) | parent_bit
                self._drop_if_clear(line)
        self._stats.add("nesting.lazy_merge_lines", merged)
        return merged

    def commit_open(self, level):
        # Gang invalidate all R_i and W_i bits (paper: "we simply gang
        # invalidate").
        self._clear_level(level)

    def rollback(self, level):
        # Gang invalidate every level >= the rolled-back one.
        for lvl in range(level, self._config.max_nesting + 1):
            self._clear_level(lvl)

    def _clear_level(self, level):
        bit = 1 << (level - 1)
        for line in list(self._lines):
            masks = self._lines[line]
            masks[0] &= ~bit
            masks[1] &= ~bit
            self._drop_if_clear(line)

    def clear_all(self):
        self._lines.clear()
        self._sets.clear()

    def footprint(self):
        return len(self._lines)


class AssociativityScheme(NestingSchemeBase):
    """One cache way per (line, nesting level) pair (Fig. 4b)."""

    def __init__(self, config, stats):
        super().__init__(config, stats)
        # (line, level) -> True; each entry occupies one way.
        self._entries = set()
        self._sets = defaultdict(set)  # set index -> {(line, level)}

    def snapshot_state(self):
        return (
            set(self._entries),
            {index: set(keys) for index, keys in self._sets.items()},
        )

    def restore_state(self, saved):
        entries, sets = saved
        self._entries = set(entries)
        self._sets = defaultdict(set)
        for index, members in sets.items():
            self._sets[index] = set(members)

    def note_access(self, level, addr, kind):
        line = addr - addr % self._line_size
        key = (line, level)
        if key in self._entries:
            return
        set_index = self._set_index(line)
        occupied = self._sets[set_index]
        if len(occupied) >= self.assoc:
            self._stats.add("nesting.overflows")
            raise CapacityAbort(
                level, f"associativity set {set_index} out of ways")
        self._entries.add(key)
        occupied.add(key)
        if kind == self.WRITE and level > 1:
            # Writing a line another nested level also versions replicates
            # the data into a new way — count it for the evaluation.
            self._stats.add("nesting.replications")

    def _remove(self, key):
        self._entries.discard(key)
        self._sets[self._set_index(key[0])].discard(key)

    def commit_closed(self, level):
        merged = 0
        for key in [k for k in self._entries if k[1] == level]:
            line = key[0]
            self._remove(key)
            merged += 1
            parent_key = (line, level - 1)
            if level - 1 >= 1 and parent_key not in self._entries:
                # Relabel NL=i to NL=i-1 (merge if the parent entry exists).
                self._entries.add(parent_key)
                self._sets[self._set_index(line)].add(parent_key)
        self._stats.add("nesting.lazy_merge_lines", merged)
        return merged

    def commit_open(self, level):
        for key in [k for k in self._entries if k[1] == level]:
            self._remove(key)

    def rollback(self, level):
        for key in [k for k in self._entries if k[1] >= level]:
            self._remove(key)

    def clear_all(self):
        self._entries.clear()
        self._sets.clear()

    def footprint(self):
        return len(self._entries)


def make_nesting_scheme(config, stats):
    """Build the nesting scheme selected by ``config.nesting_scheme``."""
    from repro.common.params import MULTI_TRACKING

    if config.nesting_scheme == MULTI_TRACKING:
        return MultiTrackingScheme(config, stats)
    return AssociativityScheme(config, stats)
