"""The commit token serializing lazy-mode commits (paper Section 6.1).

In a lazy (commit-time detection) HTM, ``xvalidate`` can be implemented
as acquiring the token that serializes commits: once a transaction holds
it, no other transaction can commit, which trivially guarantees a
*validated* transaction can no longer be violated by a prior memory
access.  The token is re-entrant per CPU so that open-nested transactions
run by commit handlers (between ``xvalidate`` and ``xcommit``) can commit
while their ancestor holds the token.

This is the paper's simplest §6.1 implementation and is kept (and unit
tested) for reference, but :class:`~repro.htm.system.HtmSystem` uses the
*validated-set admission* scheme instead: a global token would serialize
the machine across commit-handler execution and destroy the §7.2
scalable-I/O result (see DESIGN.md §6b.3).
"""

from __future__ import annotations

from repro.common.errors import IsaError


class CommitToken:
    """Machine-wide re-entrant commit token."""

    def __init__(self, stats):
        self._owner = None
        self._depth = 0
        self._stats = stats.scope("token")

    @property
    def owner(self):
        return self._owner

    def held_by_other(self, cpu_id):
        return self._owner is not None and self._owner != cpu_id

    def try_acquire(self, cpu_id):
        """Acquire (or re-enter) the token; False if another CPU holds it."""
        if self.held_by_other(cpu_id):
            self._stats.add("denied")
            return False
        self._owner = cpu_id
        self._depth += 1
        self._stats.add("acquired")
        return True

    def release(self, cpu_id):
        if self._owner != cpu_id:
            raise IsaError(
                f"cpu {cpu_id} releasing commit token owned by {self._owner}")
        self._depth -= 1
        if self._depth == 0:
            self._owner = None

    def force_release_all(self, cpu_id):
        """Drop every nested hold by ``cpu_id`` (used on rollback while
        validated, e.g. a voluntary abort between xvalidate and xcommit)."""
        if self._owner == cpu_id:
            self._owner = None
            self._depth = 0
