"""Conflict detection engines: lazy (commit-time) and eager (access-time).

Both engines observe memory traffic and *post violations* to victim CPUs
through a sink callback; delivery to the victim's violation handler is the
engine's job (it models the hardware jump to ``xvhcode``).

* :class:`LazyDetector` — TCC-style, the configuration the paper
  evaluates: conflicts are found when a committing transaction broadcasts
  its write-set; any other CPU whose read-set intersects it is violated at
  every affected nesting level (this sets the ``xvcurrent`` bitmask).

* :class:`EagerDetector` — UTM/LogTM-style: conflicts are found as
  accesses happen, using the coherence protocol.  Two resolution policies:
  ``requester_wins`` (the accessor proceeds, the owner is violated) and
  ``requester_stalls`` (older-timestamp transaction wins; the younger
  requester stalls, and self-aborts if it would have to wait on a
  *validated* transaction or stalls too long).  A validated transaction is
  never violated (paper §6.1).

Both detectors probe the machine-wide reverse
:class:`~repro.htm.rwset.ConflictIndex` — ``unit -> per-CPU level
masks`` — so an access costs O(actual owners of that unit), not
O(n_cpus × nesting levels).  The original full-scan implementations are
kept verbatim as :class:`NaiveLazyDetector` / :class:`NaiveEagerDetector`:
they are the differential-testing reference (``tests/
test_differential_detectors.py``) and the baseline the bench harness
measures speedups against (``config.naive_detection`` selects them).
Both pairs must produce bit-for-bit identical violation streams, cycle
counts, and final memory images.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import REQUESTER_WINS


#: Actions an eager check can demand of the requesting CPU.
PROCEED = "proceed"
STALL = "stall"
SELF_ABORT = "self_abort"

#: Retries before a stalling requester conservatively self-aborts
#: (deadlock avoidance).
STALL_LIMIT = 64

#: Shared empty owner table: the indexed detectors' "nobody tracks this
#: unit" answer, probed without allocating.
_NOBODY = {}


@dataclasses.dataclass
class Violation:
    """A conflict posted to a victim."""

    victim: int
    mask: int       # one bit per affected nesting level (bit 0 = level 1)
    addr: int       # conflicting unit address (xvaddr), when known
    source: int     # CPU whose access/commit caused it


class DetectorBase:
    def __init__(self, config, states, stats, index=None):
        self._config = config
        self._states = states   # list of per-CPU TxState
        self._stats = stats
        self._index = index     # machine-wide ConflictIndex (may be None
        #                         for the naive detectors)
        self._sink = None
        self._n_posted = stats.counter("conflicts.posted")

    def attach_sink(self, sink):
        """``sink(Violation)`` delivers a violation to a victim CPU."""
        self._sink = sink

    def _post(self, victim, mask, addr, source):
        self._n_posted.add()
        self._sink(Violation(victim=victim, mask=mask, addr=addr,
                             source=source))

    # -- snapshot support ------------------------------------------------------

    def snapshot_state(self):
        """Lazy detectors are stateless beyond the shared stats tree."""
        return None

    def restore_state(self, saved):
        pass

    # -- interface -----------------------------------------------------------

    def on_load(self, cpu_id, unit):
        """Check a transactional load; return PROCEED/STALL/SELF_ABORT."""
        return PROCEED

    def on_store(self, cpu_id, unit):
        return PROCEED

    def on_commit(self, cpu_id, written_units):
        """Observe a write-set publication (outermost/open commit, or a
        non-transactional store in a strongly-atomic machine)."""


class LazyDetectorBase(DetectorBase):
    """Shared post-ordering contract for the lazy detectors.

    Violations are posted victim-major (ascending CPU id), and within a
    victim unit-major (ascending unit address), so a re-invoked handler
    sees each conflicting address in ``xvaddr`` (§4.6) in a fixed order.
    Both implementations must honour it bit-for-bit.
    """


class NaiveLazyDetector(LazyDetectorBase):
    """Commit-time detection scanning every other CPU's read-sets.

    The O(n_cpus × written units) reference implementation: correct,
    slow, and the oracle the indexed detector is diffed against.
    """

    def on_commit(self, cpu_id, written_units):
        if not written_units:
            return
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            # One violation record per conflicting unit, so a re-invoked
            # handler sees each conflicting address in xvaddr (§4.6).
            for unit in sorted(written_units):
                mask = victim.rwsets.levels_reading(unit)
                if mask:
                    self._post(victim_id, mask, unit, cpu_id)


class LazyDetector(LazyDetectorBase):
    """Commit-time detection through the reverse index.

    Probes only the units' actual readers.  Posting a violation never
    mutates any read-set (delivery just latches the victim's violation
    registers), so collecting all victims first and posting afterwards
    is observably identical to the naive interleaved scan — as long as
    the victim-major, unit-minor order is reproduced exactly.
    """

    def on_commit(self, cpu_id, written_units):
        if not written_units:
            return
        readers = self._index.readers
        per_victim = {}
        for unit in sorted(written_units):
            for victim_id, mask in readers.get(unit, _NOBODY).items():
                if victim_id != cpu_id:
                    per_victim.setdefault(victim_id, []).append((unit, mask))
        for victim_id in sorted(per_victim):
            for unit, mask in per_victim[victim_id]:
                self._post(victim_id, mask, unit, cpu_id)


class EagerDetectorBase(DetectorBase):
    """Access-time detection: shared resolution policy.

    Subclasses differ only in how they find the victims of an access;
    resolution (who wins, who stalls, who self-aborts) is common.  The
    victim list handed to :meth:`_resolve` must be in ascending CPU-id
    order — resolution can return early, so the order is observable.
    """

    def __init__(self, config, states, stats, index=None):
        super().__init__(config, states, stats, index)
        self._stall_counts = {}
        self._n_stalls = stats.counter("conflicts.stalls")
        self._n_self_aborts = stats.counter("conflicts.self_aborts")

    def snapshot_state(self):
        return dict(self._stall_counts)

    def restore_state(self, saved):
        self._stall_counts = dict(saved)

    def _resolve(self, cpu_id, unit, victims):
        """Decide the fate of an access conflicting with ``victims``
        (list of (victim_id, mask) pairs).

        Even a *winning* requester must stall until its victims have
        actually rolled back: with an undo-log the victim's doomed
        in-place writes are still in memory until then, and reading them
        would leak uncommitted state (the LogTM NACK-until-released
        behaviour).  The access retries and proceeds once the victims'
        conflicting sets are gone.
        """
        me = self._states[cpu_id]
        for victim_id, mask in victims:
            victim = self._states[victim_id]
            if victim.is_validated():
                # A validated transaction can no longer lose (paper §6.1);
                # wait for it to finish, aborting ourselves if we cannot
                # make progress (it might be waiting to run on our data).
                return self._stall_or_self_abort(cpu_id, unit)
            if self._config.eager_policy == REQUESTER_WINS or not me.in_tx():
                # Non-transactional requesters cannot roll back, so they
                # always win under either policy (strong atomicity).
                self._post(victim_id, mask, unit, cpu_id)
                continue
            # requester_stalls: the strictly older transaction wins.
            # Ties (same begin cycle) break by CPU id — the order must be
            # total, or two same-age transactions kill each other forever.
            if (me.timestamp, cpu_id) < (victim.timestamp, victim_id):
                self._post(victim_id, mask, unit, cpu_id)
            else:
                return self._stall_or_self_abort(cpu_id, unit)
        # Violations posted: wait for the victims to finish rolling back.
        return self._stall_or_self_abort(cpu_id, unit)

    def _stall_or_self_abort(self, cpu_id, unit):
        count = self._stall_counts.get(cpu_id, 0) + 1
        self._stall_counts[cpu_id] = count
        if count > STALL_LIMIT:
            self._stall_counts.pop(cpu_id, None)
            self._n_self_aborts.add()
            return SELF_ABORT
        self._n_stalls.add()
        return STALL


class NaiveEagerDetector(EagerDetectorBase):
    """Access-time detection scanning every other CPU's read/write-sets.

    O(n_cpus × nesting levels) per transactional access — the reference
    implementation the indexed detector is diffed and benched against.
    """

    def on_load(self, cpu_id, unit):
        victims = []
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            mask = victim.rwsets.levels_writing(unit)
            if mask:
                victims.append((victim_id, mask))
        if not victims:
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_store(self, cpu_id, unit):
        victims = []
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            mask = victim.rwsets.levels_touching(unit)
            if mask:
                victims.append((victim_id, mask))
        if not victims:
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_commit(self, cpu_id, written_units):
        # All conflicts were resolved at access time.  Nothing to do.
        return None


class EagerDetector(EagerDetectorBase):
    """Access-time detection through the reverse index.

    The overwhelmingly common case — nobody else tracks the unit — is a
    single dictionary miss instead of a sweep over every CPU's sets.
    The index's tables are probed directly (they are public attributes)
    because even one bound-method call per access is measurable here.
    """

    def __init__(self, config, states, stats, index=None):
        super().__init__(config, states, stats, index)
        self._idx_readers = index.readers
        self._idx_writers = index.writers

    def on_load(self, cpu_id, unit):
        writers = self._idx_writers.get(unit)
        # Fast path: nobody (or only the requester itself) writes the
        # unit — the overwhelmingly common outcome for private data.
        if not writers or (len(writers) == 1 and cpu_id in writers):
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        victims = [(victim_id, writers[victim_id])
                   for victim_id in sorted(writers) if victim_id != cpu_id]
        if not victims:
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_store(self, cpu_id, unit):
        readers = self._idx_readers.get(unit) or _NOBODY
        writers = self._idx_writers.get(unit) or _NOBODY
        if ((not readers or (len(readers) == 1 and cpu_id in readers))
                and (not writers
                     or (len(writers) == 1 and cpu_id in writers))):
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        victims = [
            (victim_id,
             readers.get(victim_id, 0) | writers.get(victim_id, 0))
            for victim_id in sorted(readers.keys() | writers.keys())
            if victim_id != cpu_id
        ]
        if not victims:
            if self._stall_counts:
                self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_commit(self, cpu_id, written_units):
        # All conflicts were resolved at access time.  Nothing to do.
        return None


def make_detector(config, states, stats, index=None):
    """Build the detector selected by ``config.detection``.

    The indexed detectors need the machine-wide reverse index; without
    one (bare construction in unit tests), or when
    ``config.naive_detection`` asks for the reference path, the naive
    full-scan detectors are used instead.
    """
    from repro.common.params import LAZY

    naive = index is None or getattr(config, "naive_detection", False)
    if config.detection == LAZY:
        cls = NaiveLazyDetector if naive else LazyDetector
    else:
        cls = NaiveEagerDetector if naive else EagerDetector
    return cls(config, states, stats, index)
