"""Conflict detection engines: lazy (commit-time) and eager (access-time).

Both engines observe memory traffic and *post violations* to victim CPUs
through a sink callback; delivery to the victim's violation handler is the
engine's job (it models the hardware jump to ``xvhcode``).

* :class:`LazyDetector` — TCC-style, the configuration the paper
  evaluates: conflicts are found when a committing transaction broadcasts
  its write-set; any other CPU whose read-set intersects it is violated at
  every affected nesting level (this sets the ``xvcurrent`` bitmask).

* :class:`EagerDetector` — UTM/LogTM-style: conflicts are found as
  accesses happen, using the coherence protocol.  Two resolution policies:
  ``requester_wins`` (the accessor proceeds, the owner is violated) and
  ``requester_stalls`` (older-timestamp transaction wins; the younger
  requester stalls, and self-aborts if it would have to wait on a
  *validated* transaction or stalls too long).  A validated transaction is
  never violated (paper §6.1).
"""

from __future__ import annotations

import dataclasses


#: Actions an eager check can demand of the requesting CPU.
PROCEED = "proceed"
STALL = "stall"
SELF_ABORT = "self_abort"

#: Retries before a stalling requester conservatively self-aborts
#: (deadlock avoidance).
STALL_LIMIT = 64


@dataclasses.dataclass
class Violation:
    """A conflict posted to a victim."""

    victim: int
    mask: int       # one bit per affected nesting level (bit 0 = level 1)
    addr: int       # conflicting unit address (xvaddr), when known
    source: int     # CPU whose access/commit caused it


class DetectorBase:
    def __init__(self, config, states, stats):
        self._config = config
        self._states = states   # list of per-CPU TxState
        self._stats = stats
        self._sink = None

    def attach_sink(self, sink):
        """``sink(Violation)`` delivers a violation to a victim CPU."""
        self._sink = sink

    def _post(self, victim, mask, addr, source):
        self._stats.add("conflicts.posted")
        self._sink(Violation(victim=victim, mask=mask, addr=addr,
                             source=source))

    # -- interface -----------------------------------------------------------

    def on_load(self, cpu_id, unit):
        """Check a transactional load; return PROCEED/STALL/SELF_ABORT."""
        return PROCEED

    def on_store(self, cpu_id, unit):
        return PROCEED

    def on_commit(self, cpu_id, written_units):
        """Observe a write-set publication (outermost/open commit, or a
        non-transactional store in a strongly-atomic machine)."""


class LazyDetector(DetectorBase):
    """Commit-time detection against every other CPU's read-sets."""

    def on_commit(self, cpu_id, written_units):
        if not written_units:
            return
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            # One violation record per conflicting unit, so a re-invoked
            # handler sees each conflicting address in xvaddr (§4.6).
            for unit in sorted(written_units):
                mask = victim.rwsets.levels_reading(unit)
                if mask:
                    self._post(victim_id, mask, unit, cpu_id)


class EagerDetector(DetectorBase):
    """Access-time detection against every other CPU's read/write-sets."""

    def __init__(self, config, states, stats):
        super().__init__(config, states, stats)
        self._stall_counts = {}

    def _resolve(self, cpu_id, unit, victims):
        """Decide the fate of an access conflicting with ``victims``
        (list of (victim_id, mask) pairs).

        Even a *winning* requester must stall until its victims have
        actually rolled back: with an undo-log the victim's doomed
        in-place writes are still in memory until then, and reading them
        would leak uncommitted state (the LogTM NACK-until-released
        behaviour).  The access retries and proceeds once the victims'
        conflicting sets are gone.
        """
        from repro.common.params import REQUESTER_WINS

        me = self._states[cpu_id]
        for victim_id, mask in victims:
            victim = self._states[victim_id]
            if victim.is_validated():
                # A validated transaction can no longer lose (paper §6.1);
                # wait for it to finish, aborting ourselves if we cannot
                # make progress (it might be waiting to run on our data).
                return self._stall_or_self_abort(cpu_id, unit)
            if self._config.eager_policy == REQUESTER_WINS or not me.in_tx():
                # Non-transactional requesters cannot roll back, so they
                # always win under either policy (strong atomicity).
                self._post(victim_id, mask, unit, cpu_id)
                continue
            # requester_stalls: the strictly older transaction wins.
            # Ties (same begin cycle) break by CPU id — the order must be
            # total, or two same-age transactions kill each other forever.
            if (me.timestamp, cpu_id) < (victim.timestamp, victim_id):
                self._post(victim_id, mask, unit, cpu_id)
            else:
                return self._stall_or_self_abort(cpu_id, unit)
        # Violations posted: wait for the victims to finish rolling back.
        return self._stall_or_self_abort(cpu_id, unit)

    def _stall_or_self_abort(self, cpu_id, unit):
        count = self._stall_counts.get(cpu_id, 0) + 1
        self._stall_counts[cpu_id] = count
        if count > STALL_LIMIT:
            self._stall_counts.pop(cpu_id, None)
            self._stats.add("conflicts.self_aborts")
            return SELF_ABORT
        self._stats.add("conflicts.stalls")
        return STALL

    def on_load(self, cpu_id, unit):
        victims = []
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            mask = victim.rwsets.levels_writing(unit)
            if mask:
                victims.append((victim_id, mask))
        if not victims:
            self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_store(self, cpu_id, unit):
        victims = []
        for victim_id, victim in enumerate(self._states):
            if victim_id == cpu_id:
                continue
            mask = victim.rwsets.levels_touching(unit)
            if mask:
                victims.append((victim_id, mask))
        if not victims:
            self._stall_counts.pop(cpu_id, None)
            return PROCEED
        return self._resolve(cpu_id, unit, victims)

    def on_commit(self, cpu_id, written_units):
        # All conflicts were resolved at access time.  Nothing to do.
        return None


def make_detector(config, states, stats):
    """Build the detector selected by ``config.detection``."""
    from repro.common.params import LAZY

    if config.detection == LAZY:
        return LazyDetector(config, states, stats)
    return EagerDetector(config, states, stats)
