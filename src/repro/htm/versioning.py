"""Speculative data versioning: write-buffer and undo-log schemes.

The paper's HTM design space (Section 2.2) contains two version-management
choices, both of which we implement behind one interface:

* :class:`WriteBufferVersioning` — speculative writes are buffered per
  nesting level and reach shared memory only at (outermost or open-nested)
  commit.  This is the scheme the paper evaluates (TCC-style).
* :class:`UndoLogVersioning` — stores update memory in place; a FILO undo
  log in thread-private memory holds old values (LogTM/UTM-style).  Only
  legal with eager conflict detection.

Both also maintain the *immediate-store* undo area: ``imst`` updates
memory now but is undone on rollback, while ``imstid`` keeps no undo
information (paper §4.7).
"""

from __future__ import annotations

import dataclasses

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE


@dataclasses.dataclass
class UndoEntry:
    """One old-value record: restore ``addr`` to ``old`` on rollback of
    ``level``.  ``kind`` distinguishes transactional stores from ``imst``
    records (they share one FILO log in the undo-log scheme so that
    interleaved stores to the same word restore in the right order)."""

    level: int
    addr: int
    old: object
    kind: str = "tx"

    def clone(self):
        """An independent copy (entries mutate in place on commit)."""
        return UndoEntry(self.level, self.addr, self.old, self.kind)


class VersionManagerBase:
    """State and behaviour shared by both versioning schemes."""

    def __init__(self, config, memory, stats):
        self._config = config
        self._memory = memory
        self._stats = stats
        # Undo records for ``imst`` at each active level, in push order.
        self._im_undo = []
        self._im_logged = set()  # (level, addr) pairs already logged
        # Deferred per-store event count; flush_stats folds it into the
        # stats tree under the scheme's counter name at run end.
        self.n_stores = 0
        self._stores_key = None  # set by subclasses that count stores

    def flush_stats(self):
        """Fold deferred event counts into the stats tree."""
        if self.n_stores and self._stores_key:
            self._stats.add(self._stores_key, self.n_stores)
            self.n_stores = 0

    # -- snapshot support --------------------------------------------------------

    def snapshot_state(self):
        """Capture common state; subclasses append their own fields."""
        return (
            [entry.clone() for entry in self._im_undo],
            set(self._im_logged),
            self.n_stores,
        )

    def restore_state(self, saved):
        im_undo, im_logged, n_stores = saved
        self._im_undo = [entry.clone() for entry in im_undo]
        self._im_logged = set(im_logged)
        self.n_stores = n_stores

    # -- immediate accesses ----------------------------------------------------

    def im_load(self, addr):
        return self._memory.read(addr)

    def im_store(self, level, addr, value):
        """``imst``: write memory now; keep undo info for ``level``."""
        if level >= 1 and (level, addr) not in self._im_logged:
            self._im_undo.append(UndoEntry(level, addr, self._memory.read(addr)))
            self._im_logged.add((level, addr))
        self._memory.write(addr, value)

    def im_store_id(self, addr, value):
        """``imstid``: write memory now; no undo information at all."""
        self._memory.write(addr, value)

    def _rollback_im(self, level):
        """Undo ``imst`` effects of ``level`` in FILO order."""
        restored = 0
        while self._im_undo and self._im_undo[-1].level >= level:
            entry = self._im_undo.pop()
            self._memory.write(entry.addr, entry.old)
            self._im_logged.discard((entry.level, entry.addr))
            restored += 1
        return restored

    def _merge_im(self, level):
        """Closed commit: the child's ``imst`` undo records become the
        parent's, preserving FILO order."""
        parent = level - 1
        for entry in self._im_undo:
            if entry.level == level:
                self._im_logged.discard((level, entry.addr))
                entry.level = parent
                if parent >= 1:
                    self._im_logged.add((parent, entry.addr))
        if parent < 1:
            self._im_undo = [e for e in self._im_undo if e.level >= 1]

    def _publish_im(self, level):
        """Open commit: the child's ``imst`` effects become permanent."""
        for entry in self._im_undo:
            if entry.level == level:
                self._im_logged.discard((level, entry.addr))
        self._im_undo = [e for e in self._im_undo if e.level != level]

    # -- interface ---------------------------------------------------------------

    def begin_level(self, level):
        raise NotImplementedError

    def tx_load(self, level, addr):
        raise NotImplementedError

    def tx_store(self, level, addr, value):
        raise NotImplementedError

    def commit_closed(self, level):
        """Merge level's speculative data into the parent.  Returns work
        units performed (for timing)."""
        raise NotImplementedError

    def commit_to_memory(self, level, written_units=None):
        """Publish level's speculative data to shared memory (outermost or
        open-nested commit).  Returns the set of word addresses written."""
        raise NotImplementedError

    def rollback(self, level):
        """Discard/undo level's speculative data.  Returns work units."""
        raise NotImplementedError

    def written_words(self, level):
        """Word addresses with a speculative value at ``level``."""
        raise NotImplementedError


class WriteBufferVersioning(VersionManagerBase):
    """Per-level write buffers; memory untouched until commit."""

    def __init__(self, config, memory, stats):
        super().__init__(config, memory, stats)
        self._buffers = {}  # level -> {word addr: value}
        # Active levels in descending order, maintained on begin/commit/
        # rollback so the per-load lookup never sorts (hot path).
        self._levels_desc = []
        self._stores_key = "wbuf.stores"

    def _relevel(self):
        self._levels_desc = sorted(self._buffers, reverse=True)

    def snapshot_state(self):
        return (
            super().snapshot_state(),
            {level: dict(buffer) for level, buffer in self._buffers.items()},
        )

    def restore_state(self, saved):
        base, buffers = saved
        super().restore_state(base)
        self._buffers = {
            level: dict(buffer) for level, buffer in buffers.items()}
        self._relevel()

    def begin_level(self, level):
        self._buffers[level] = {}
        self._relevel()

    def tx_load(self, level, addr):
        # Innermost buffered version wins; fall through to memory.
        # (No alignment check here: buffered keys were checked by
        # tx_store, and the memory fallthrough checks on read.)
        buffers = self._buffers
        for lvl in self._levels_desc:
            if lvl > level:
                continue
            buffer = buffers[lvl]
            if addr in buffer:
                return buffer[addr]
        return self._memory.read(addr)

    def tx_store(self, level, addr, value):
        # The buffer write bypasses MemoryImage, so guard alignment here
        # (inlined: this backs every speculative store).
        if addr % WORD_SIZE:
            raise MemoryError_(f"unaligned word access at {addr:#x}")
        self._buffers[level][addr] = value
        self.n_stores += 1

    def commit_closed(self, level):
        child = self._buffers.pop(level)
        self._relevel()
        parent_level = level - 1
        if parent_level in self._buffers:
            self._buffers[parent_level].update(child)
        self._merge_im(level)
        self._stats.add("wbuf.merged_words", len(child))
        return len(child)

    def commit_to_memory(self, level, written_units=None):
        child = self._buffers.pop(level)
        self._relevel()
        for addr, value in child.items():
            self._memory.write(addr, value)
        # Open-nested commit semantics (paper §4.5/§6.3.2): ancestors with
        # their own speculative version of the same data are updated with
        # the committed values, *without* touching their R/W bits.
        for lvl, buffer in self._buffers.items():
            if lvl >= level:
                continue
            for addr, value in child.items():
                if addr in buffer:
                    buffer[addr] = value
                    self._stats.add("wbuf.ancestor_updates")
        self._publish_im(level)
        self._stats.add("wbuf.committed_words", len(child))
        return set(child)

    def rollback(self, level):
        dropped = self._buffers.pop(level, {})
        self._relevel()
        restored = self._rollback_im(level)
        self._stats.add("wbuf.rolled_back_words", len(dropped))
        return len(dropped) + restored

    def written_words(self, level):
        return set(self._buffers.get(level, ()))


class UndoLogVersioning(VersionManagerBase):
    """In-place stores with a FILO undo log per nesting level.

    The log is level-monotone: all records of level *i* sit after every
    record of shallower levels, so rollback pops a suffix — exactly the
    stack structure the paper describes for the multi-tracking scheme
    (§6.3.1).
    """

    def __init__(self, config, memory, stats):
        super().__init__(config, memory, stats)
        self._log = []          # list[UndoEntry], push order
        self._logged = set()    # (level, word addr) already logged
        self._level_writes = {}  # level -> set of word addrs written
        self._stores_key = "undolog.stores"

    def begin_level(self, level):
        self._level_writes[level] = set()

    def snapshot_state(self):
        return (
            super().snapshot_state(),
            [entry.clone() for entry in self._log],
            set(self._logged),
            {level: set(addrs)
             for level, addrs in self._level_writes.items()},
        )

    def restore_state(self, saved):
        base, log, logged, level_writes = saved
        super().restore_state(base)
        self._log = [entry.clone() for entry in log]
        self._logged = set(logged)
        self._level_writes = {
            level: set(addrs) for level, addrs in level_writes.items()}

    def im_store(self, level, addr, value):
        """``imst`` on an undo-log machine shares the transactional FILO
        log: interleaved ``imst``/store traffic to one word must undo in
        strict reverse order, which two separate stacks cannot guarantee
        (found by the hypothesis equivalence property)."""
        if level >= 1 and (level, addr, "im") not in self._logged:
            self._log.append(UndoEntry(
                level, addr, self._memory.read(addr), kind="im"))
            self._logged.add((level, addr, "im"))
        self._memory.write(addr, value)

    def tx_load(self, level, addr):
        return self._memory.read(addr)

    def tx_store(self, level, addr, value):
        if (level, addr, "tx") not in self._logged:
            self._log.append(UndoEntry(level, addr, self._memory.read(addr)))
            self._logged.add((level, addr, "tx"))
        self._level_writes[level].add(addr)
        self._memory.write(addr, value)
        self.n_stores += 1

    def commit_closed(self, level):
        parent = level - 1
        relabelled = 0
        for entry in self._log:
            if entry.level == level:
                self._logged.discard((level, entry.addr, entry.kind))
                entry.level = parent
                # Keep only the oldest record per (parent, addr, kind):
                # FILO replay makes the older record win anyway, but
                # dropping duplicates keeps the log bounded.
                if (parent, entry.addr, entry.kind) in self._logged:
                    entry.level = -1  # mark dead
                else:
                    self._logged.add((parent, entry.addr, entry.kind))
                relabelled += 1
        self._log = [e for e in self._log if e.level != -1]
        writes = self._level_writes.pop(level)
        self._level_writes.setdefault(parent, set()).update(writes)
        return relabelled

    def commit_to_memory(self, level, written_units=None):
        written = self._level_writes.pop(level, set())
        # Discard this level's undo records: the writes are permanent now.
        kept = []
        search_steps = 0
        for entry in self._log:
            search_steps += 1
            if entry.level == level:
                self._logged.discard((level, entry.addr, entry.kind))
                continue
            # Paper §6.3.1: if an open-nested commit overwrites data also
            # written by an ancestor, the ancestor's log entry must be
            # updated so a later ancestor rollback does not restore a
            # pre-open-commit value.  This is the "expensive search".
            if entry.addr in written:
                entry.old = self._memory.read(entry.addr)
                self._stats.add("undolog.ancestor_fixups")
            kept.append(entry)
        self._log = kept
        self._publish_im(level)
        self._stats.add("undolog.commit_search_steps", search_steps)
        return written

    def rollback(self, level):
        restored = 0
        while self._log and self._log[-1].level >= level:
            entry = self._log.pop()
            self._memory.write(entry.addr, entry.old)
            self._logged.discard((entry.level, entry.addr, entry.kind))
            restored += 1
        for lvl in [l for l in self._level_writes if l >= level]:
            del self._level_writes[lvl]
        self._stats.add("undolog.restored", restored)
        return restored

    def written_words(self, level):
        return set(self._level_writes.get(level, ()))

    @property
    def log_length(self):
        return len(self._log)


def make_version_manager(config, memory, stats):
    """Build the version manager selected by ``config.versioning``."""
    from repro.common.params import WRITE_BUFFER

    if config.versioning == WRITE_BUFFER:
        return WriteBufferVersioning(config, memory, stats)
    return UndoLogVersioning(config, memory, stats)
