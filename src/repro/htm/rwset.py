"""Per-CPU, per-nesting-level read- and write-set tracking.

The HTM tracks the addresses read and written by each active transaction
in the nest (paper Section 4.5/6.3).  Tracking granularity is a *unit*:
a cache line by default, or a word when ``config.granularity == WORD``
(the paper discusses the word-granularity option in the context of the
``release`` instruction, §4.7).

Levels are 1-based; level 0 means non-transactional.

Conflict detection needs the *reverse* mapping — given a unit, which
CPUs track it at which levels?  Scanning every CPU's sets per access is
O(n_cpus × levels); real bounded-set HTMs answer it with a per-line
ownership lookup instead.  :class:`ConflictIndex` is that lookup: a
machine-wide ``unit -> {cpu_id: level-mask}`` map for readers and
writers, maintained incrementally by every :class:`RwSets` mutation, so
the detectors probe only a unit's actual owners (docs/performance.md).
"""

from __future__ import annotations

from repro.common.addr import line_of
from repro.common.params import LINE


class ConflictIndex:
    """Machine-wide reverse map: unit -> per-CPU reader/writer masks.

    Masks use bit ``level - 1`` for nesting level ``level``, the same
    encoding as ``xvcurrent`` and :meth:`RwSets.levels_reading`.  Empty
    masks and empty per-unit tables are pruned eagerly, so iteration
    over a unit's owners touches only CPUs that really track it.
    """

    __slots__ = ("readers", "writers")

    #: Shared immutable empty owner table (the common "nobody tracks
    #: this unit" answer, returned without allocating).
    _EMPTY = {}

    def __init__(self):
        #: unit -> {cpu_id: level mask}.  Public so the detectors' hot
        #: path can probe the dict without a method call; all *mutation*
        #: still goes through set_*/clear_* below.
        self.readers = {}
        self.writers = {}

    # -- queries (the detectors' hot path) ---------------------------------

    def readers_of(self, unit):
        """``{cpu_id: level-mask}`` of CPUs with ``unit`` in a read-set.

        The returned mapping is the index's internal table; callers must
        not mutate it (the detectors only iterate).
        """
        return self.readers.get(unit, self._EMPTY)

    def writers_of(self, unit):
        """``{cpu_id: level-mask}`` of CPUs with ``unit`` in a write-set."""
        return self.writers.get(unit, self._EMPTY)

    def read_mask(self, cpu_id, unit):
        """Level mask of ``cpu_id``'s read-sets holding ``unit``."""
        return self.readers.get(unit, self._EMPTY).get(cpu_id, 0)

    def write_mask(self, cpu_id, unit):
        return self.writers.get(unit, self._EMPTY).get(cpu_id, 0)

    def tracked_units(self):
        """All units with at least one owner (for invariant checks)."""
        return set(self.readers) | set(self.writers)

    # -- maintenance (called by RwSets only) -------------------------------

    @staticmethod
    def _set(table, cpu_id, unit, bit):
        owners = table.get(unit)
        if owners is None:
            table[unit] = {cpu_id: bit}
        else:
            owners[cpu_id] = owners.get(cpu_id, 0) | bit

    @staticmethod
    def _clear(table, cpu_id, unit, mask):
        owners = table.get(unit)
        if owners is None:
            return
        bits = owners.get(cpu_id, 0) & ~mask
        if bits:
            owners[cpu_id] = bits
        else:
            owners.pop(cpu_id, None)
            if not owners:
                del table[unit]

    # -- snapshot support ---------------------------------------------------

    def snapshot_state(self):
        """Two-level copies of both owner tables."""
        return (
            {unit: dict(owners) for unit, owners in self.readers.items()},
            {unit: dict(owners) for unit, owners in self.writers.items()},
        )

    def restore_state(self, saved):
        """Restore *in place*: the indexed detectors alias ``readers``/
        ``writers`` directly, so the dict objects must never be rebound."""
        readers, writers = saved
        self.readers.clear()
        self.readers.update(
            {unit: dict(owners) for unit, owners in readers.items()})
        self.writers.clear()
        self.writers.update(
            {unit: dict(owners) for unit, owners in writers.items()})

    def set_read(self, cpu_id, unit, level):
        self._set(self.readers, cpu_id, unit, 1 << (level - 1))

    def set_write(self, cpu_id, unit, level):
        self._set(self.writers, cpu_id, unit, 1 << (level - 1))

    def clear_read(self, cpu_id, unit, mask):
        self._clear(self.readers, cpu_id, unit, mask)

    def clear_write(self, cpu_id, unit, mask):
        self._clear(self.writers, cpu_id, unit, mask)


class RwSets:
    """Read-/write-sets for one CPU across all active nesting levels.

    When constructed with a :class:`ConflictIndex` (as
    :class:`~repro.htm.system.HtmSystem` does), every mutation also
    updates the machine-wide reverse index; a bare ``RwSets(config)``
    tracks only its own sets (unit tests build them this way).
    """

    def __init__(self, config, index=None, cpu_id=0):
        self._config = config
        self._index = index
        self._cpu_id = cpu_id
        self._reads = {}   # level -> set of units
        self._writes = {}  # level -> set of units

    # -- snapshot support ----------------------------------------------------

    def snapshot_state(self):
        return (
            {level: set(units) for level, units in self._reads.items()},
            {level: set(units) for level, units in self._writes.items()},
        )

    def restore_state(self, saved):
        reads, writes = saved
        self._reads = {level: set(units) for level, units in reads.items()}
        self._writes = {level: set(units) for level, units in writes.items()}

    # -- unit mapping --------------------------------------------------------

    def unit_of(self, addr):
        """Map an address to its tracking unit."""
        if self._config.granularity == LINE:
            return line_of(addr, self._config.line_size)
        return addr

    # -- recording ------------------------------------------------------------

    def open_level(self, level):
        """Start tracking a new nesting level."""
        self._reads[level] = set()
        self._writes[level] = set()

    def add_read(self, level, addr):
        self.add_read_unit(level, self.unit_of(addr))

    def add_write(self, level, addr):
        self.add_write_unit(level, self.unit_of(addr))

    def add_read_unit(self, level, unit):
        """Record an already-mapped unit (the HTM front-end maps the
        address once for the detector and reuses it here).  Re-recording
        a unit already tracked at this level is a no-op, so the index
        update is skipped for it — repeated access to the same line is
        the common case."""
        units = self._reads[level]
        if unit not in units:
            units.add(unit)
            if self._index is not None:
                self._index.set_read(self._cpu_id, unit, level)

    def add_write_unit(self, level, unit):
        units = self._writes[level]
        if unit not in units:
            units.add(unit)
            if self._index is not None:
                self._index.set_write(self._cpu_id, unit, level)

    def release(self, level, addr):
        """Early release: drop the unit holding ``addr`` from the read-set
        at ``level``.  Returns True if the unit was present."""
        unit = self.unit_of(addr)
        if unit in self._reads.get(level, ()):
            self._reads[level].discard(unit)
            if self._index is not None:
                self._index.clear_read(self._cpu_id, unit, 1 << (level - 1))
            return True
        return False

    # -- queries ---------------------------------------------------------------

    def reads_at(self, level):
        """Frozen view of the read-set at ``level``.

        A *copy*: callers cannot corrupt the tracking state (or the
        reverse index) by mutating the result, and the view stays valid
        across a later ``discard``/``merge_into_parent``.
        """
        return frozenset(self._reads.get(level, ()))

    def writes_at(self, level):
        """Frozen view of the write-set at ``level`` (see reads_at)."""
        return frozenset(self._writes.get(level, ()))

    def active_levels(self):
        return sorted(self._reads)

    def all_reads(self):
        """Union of read units over all active levels."""
        result = set()
        for units in self._reads.values():
            result |= units
        return result

    def all_writes(self):
        result = set()
        for units in self._writes.values():
            result |= units
        return result

    def levels_reading(self, unit):
        """Bitmask (bit ``level-1``) of levels whose read-set holds ``unit``."""
        mask = 0
        for level, units in self._reads.items():
            if unit in units:
                mask |= 1 << (level - 1)
        return mask

    def levels_writing(self, unit):
        mask = 0
        for level, units in self._writes.items():
            if unit in units:
                mask |= 1 << (level - 1)
        return mask

    def levels_touching(self, unit):
        """Levels reading *or* writing ``unit`` (for write-write conflicts
        under eager detection)."""
        return self.levels_reading(unit) | self.levels_writing(unit)

    # -- commit / rollback -------------------------------------------------------

    def merge_into_parent(self, level):
        """Closed-nested commit: OR child sets into the parent's.

        Returns the number of units merged (the lazy-merge work the
        hardware would perform, for timing accounting).
        """
        parent = level - 1
        child_reads = self._reads.pop(level)
        child_writes = self._writes.pop(level)
        merged = len(child_reads) + len(child_writes)
        if self._index is not None:
            index, cpu_id = self._index, self._cpu_id
            child_bit = 1 << (level - 1)
            for unit in child_reads:
                index.clear_read(cpu_id, unit, child_bit)
                if parent >= 1:
                    index.set_read(cpu_id, unit, parent)
            for unit in child_writes:
                index.clear_write(cpu_id, unit, child_bit)
                if parent >= 1:
                    index.set_write(cpu_id, unit, parent)
        if parent >= 1:
            self._reads[parent] |= child_reads
            self._writes[parent] |= child_writes
        return merged

    def discard(self, level):
        """Drop the sets of ``level`` (rollback, or open-nested commit)."""
        reads = self._reads.pop(level, None)
        writes = self._writes.pop(level, None)
        if self._index is not None:
            bit = 1 << (level - 1)
            for unit in reads or ():
                self._index.clear_read(self._cpu_id, unit, bit)
            for unit in writes or ():
                self._index.clear_write(self._cpu_id, unit, bit)

    def discard_all(self):
        if self._index is not None:
            for level in list(self._reads):
                self.discard(level)
        self._reads.clear()
        self._writes.clear()
