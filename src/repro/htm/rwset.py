"""Per-CPU, per-nesting-level read- and write-set tracking.

The HTM tracks the addresses read and written by each active transaction
in the nest (paper Section 4.5/6.3).  Tracking granularity is a *unit*:
a cache line by default, or a word when ``config.granularity == WORD``
(the paper discusses the word-granularity option in the context of the
``release`` instruction, §4.7).

Levels are 1-based; level 0 means non-transactional.
"""

from __future__ import annotations

from repro.common.addr import line_of
from repro.common.params import LINE


class RwSets:
    """Read-/write-sets for one CPU across all active nesting levels."""

    def __init__(self, config):
        self._config = config
        self._reads = {}   # level -> set of units
        self._writes = {}  # level -> set of units

    # -- unit mapping --------------------------------------------------------

    def unit_of(self, addr):
        """Map an address to its tracking unit."""
        if self._config.granularity == LINE:
            return line_of(addr, self._config.line_size)
        return addr

    # -- recording ------------------------------------------------------------

    def open_level(self, level):
        """Start tracking a new nesting level."""
        self._reads[level] = set()
        self._writes[level] = set()

    def add_read(self, level, addr):
        self._reads[level].add(self.unit_of(addr))

    def add_write(self, level, addr):
        self._writes[level].add(self.unit_of(addr))

    def release(self, level, addr):
        """Early release: drop the unit holding ``addr`` from the read-set
        at ``level``.  Returns True if the unit was present."""
        unit = self.unit_of(addr)
        if unit in self._reads.get(level, ()):
            self._reads[level].discard(unit)
            return True
        return False

    # -- queries ---------------------------------------------------------------

    def reads_at(self, level):
        return self._reads.get(level, set())

    def writes_at(self, level):
        return self._writes.get(level, set())

    def active_levels(self):
        return sorted(self._reads)

    def all_reads(self):
        """Union of read units over all active levels."""
        result = set()
        for units in self._reads.values():
            result |= units
        return result

    def all_writes(self):
        result = set()
        for units in self._writes.values():
            result |= units
        return result

    def levels_reading(self, unit):
        """Bitmask (bit ``level-1``) of levels whose read-set holds ``unit``."""
        mask = 0
        for level, units in self._reads.items():
            if unit in units:
                mask |= 1 << (level - 1)
        return mask

    def levels_writing(self, unit):
        mask = 0
        for level, units in self._writes.items():
            if unit in units:
                mask |= 1 << (level - 1)
        return mask

    def levels_touching(self, unit):
        """Levels reading *or* writing ``unit`` (for write-write conflicts
        under eager detection)."""
        return self.levels_reading(unit) | self.levels_writing(unit)

    # -- commit / rollback -------------------------------------------------------

    def merge_into_parent(self, level):
        """Closed-nested commit: OR child sets into the parent's.

        Returns the number of units merged (the lazy-merge work the
        hardware would perform, for timing accounting).
        """
        parent = level - 1
        child_reads = self._reads.pop(level)
        child_writes = self._writes.pop(level)
        merged = len(child_reads) + len(child_writes)
        if parent >= 1:
            self._reads[parent] |= child_reads
            self._writes[parent] |= child_writes
        return merged

    def discard(self, level):
        """Drop the sets of ``level`` (rollback, or open-nested commit)."""
        self._reads.pop(level, None)
        self._writes.pop(level, None)

    def discard_all(self):
        self._reads.clear()
        self._writes.clear()
