"""repro — a reproduction of *Architectural Semantics for Practical
Transactional Memory* (McDonald et al., ISCA 2006).

An execution-driven chip-multiprocessor simulator with the paper's full
HTM instruction set: two-phase transaction commit, software handlers on
commit/violation/abort, and closed- and open-nested transactions with
independent rollback — plus the software runtime, transactional system
libraries (I/O, conditional synchronization, allocation), and the
Section 7 workloads and experiments.

Quick start::

    from repro import Machine, Runtime, paper_config

    machine = Machine(paper_config(n_cpus=2))
    runtime = Runtime(machine)
    counter = 0x1_0000

    def body(t):
        value = yield t.load(counter)
        yield t.store(counter, value + 1)

    def program(t):
        for _ in range(10):
            yield from runtime.atomic(t, body)

    runtime.spawn(program)
    runtime.spawn(program)
    machine.run()
    assert machine.memory.read(counter) == 20
"""

from repro.common.errors import (
    CapacityAbort,
    ReproError,
    TxAborted,
    TxRollback,
)
from repro.common.params import (
    SystemConfig,
    functional_config,
    paper_config,
)
from repro.common.stats import Stats
from repro.runtime.core import RESUME, Runtime
from repro.sim.engine import Machine

__version__ = "1.0.0"

__all__ = [
    "CapacityAbort",
    "Machine",
    "RESUME",
    "ReproError",
    "Runtime",
    "Stats",
    "SystemConfig",
    "TxAborted",
    "TxRollback",
    "functional_config",
    "paper_config",
    "__version__",
]
