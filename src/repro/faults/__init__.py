"""Deterministic fault injection over the HTM simulator.

Split in two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: the pure, seeded
  decision stream (*what* fires, and every random choice).  Replayable
  from ``(fault, seed)``.
* :mod:`repro.faults.injector` — :class:`FaultInjector`: wires a plan
  into a live :class:`~repro.sim.engine.Machine` by wrapping the same
  instance-attribute seams the tracer uses; ``detach()`` restores the
  unpatched machine exactly.

See ``docs/faults.md`` for the taxonomy and the chaos-matrix workflow
(``python -m repro chaos``).
"""

from repro.faults.injector import FaultInjector, attach_fault
from repro.faults.plan import (
    ALL,
    FAULT_KINDS,
    FAULT_NAMES,
    LEGACY_KINDS,
    FaultPlan,
    make_plan,
)

__all__ = [
    "ALL",
    "FAULT_KINDS",
    "FAULT_NAMES",
    "LEGACY_KINDS",
    "FaultInjector",
    "FaultPlan",
    "attach_fault",
    "make_plan",
]
