"""Deterministic fault plans: *what* to inject, decided up front.

A :class:`FaultPlan` is the pure-data half of the fault-injection
subsystem: given a ``(fault, seed)`` pair it pre-draws — from a seeded
generator — which *opportunities* (deterministic event counts maintained
by the :class:`~repro.faults.injector.FaultInjector`) actually fire, and
serves any further random choices (victim CPU, nesting level, address,
delay) from the same generator.  Two runs with the same plan arguments
therefore make bit-identical decisions, which is what makes every chaos
failure replayable from its ``(fault, seed, config, program)`` triple.

The generator is seeded with a *string* (``"kind:seed:broken"``): string
seeding hashes via SHA-512 and is stable across processes, whereas
seeding with a tuple would go through ``hash()`` and depend on
``PYTHONHASHSEED``.

Fault kinds (the paper's recovery surfaces, ISSUE tentpole):

=====================  ====================================================
``spurious-violation`` conflict posts against CPUs with no real conflict
                       (never a VALIDATED level — paper §6.1)
``delayed-violation``  violation delivery held back a few engine steps
                       (flushed at the xvalidate barrier and before parks)
``token-loss``         ``xvalidate`` loses the commit-token arbitration
                       spuriously; the CPU stalls and retries
``validated-abort``    a validated transaction is devalidated and then
                       violated — the §6.1-safe forced abort between
                       xvalidate and xcommit
``handler-reentry``    a new conflict arrives during violation-handler
                       dispatch (queued, re-invoking the handler, §4.6)
``watch-drop``         a tracked read-set unit is lost from the hardware
                       (generalizing ``requeue_enabled``); the hardware
                       conservatively violates the level it dropped from
``io-fault``           a transient syscall failure in ``runtime/txio``
                       (EINTR-style: charged and retried)
``alloc-pressure``     allocator pressure in ``runtime/alloc``: the open
                       allocation transaction is delayed and self-violated
``drop-requeue``       legacy: disable the §6b.2 violation-record re-queue
                       (a known bug reintroduction; not part of the clean
                       chaos matrix)
=====================  ====================================================

Every kind except ``drop-requeue`` also has a ``+broken`` variant — a
deliberately wrong recovery (e.g. ``spurious-violation+broken`` rolls the
level back but drops the handler invocation, ``io-fault+broken`` retries
a write blindly after the device effect) used by the oracle self-tests to
prove the matching oracle actually catches the bug class.
"""

from __future__ import annotations

import random

#: The chaos fault kinds: every one must run clean against the oracles.
FAULT_KINDS = (
    "spurious-violation",
    "delayed-violation",
    "token-loss",
    "validated-abort",
    "handler-reentry",
    "watch-drop",
    "io-fault",
    "alloc-pressure",
)

#: Kinds outside the clean matrix (bug reintroductions by construction).
LEGACY_KINDS = ("drop-requeue",)

#: Storm sentinel: fire at every opportunity.
ALL = "all"

#: Default (fires, horizon) per kind: ``fires`` opportunities are drawn
#: uniformly from the first ``horizon``.  Tuned so each kind fires a few
#: times inside the adversarial programs' short runs.
_DEFAULTS = {
    "spurious-violation": (3, 150),
    "delayed-violation": (2, 6),
    "token-loss": (3, 10),
    "validated-abort": (2, 8),
    "handler-reentry": (2, 5),
    "watch-drop": (2, 120),
    "io-fault": (2, 6),
    "alloc-pressure": (2, 6),
    "drop-requeue": (0, 1),
}

#: Broken-variant overrides: denser/permanent firing so the deliberately
#: wrong recovery reliably reaches its kill window.
_BROKEN_DEFAULTS = {
    "spurious-violation": (8, 200),
    "delayed-violation": (4, 8),
    "token-loss": (1, 4),
    "validated-abort": (2, 8),
    "handler-reentry": (ALL, 1),
    "watch-drop": (12, 60),
    "io-fault": (2, 4),
    "alloc-pressure": (2, 4),
}

#: Every name ``make_plan`` accepts (the CLI's --inject-fault choices).
FAULT_NAMES = tuple(
    list(FAULT_KINDS)
    + [f"{kind}+broken" for kind in FAULT_KINDS]
    + list(LEGACY_KINDS)
)


class FaultPlan:
    """Seeded, pre-drawn decisions for one fault-injected run."""

    def __init__(self, kind, seed, broken=False, fires=None, horizon=None):
        if kind not in FAULT_KINDS and kind not in LEGACY_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; choose from "
                f"{FAULT_KINDS + LEGACY_KINDS}")
        self.kind = kind
        self.seed = seed
        self.broken = broken
        defaults = (_BROKEN_DEFAULTS if broken else _DEFAULTS).get(
            kind, _DEFAULTS[kind])
        if fires is None:
            fires = defaults[0]
        if horizon is None:
            horizon = defaults[1]
        self.fires = fires
        self.horizon = horizon
        self._rng = random.Random(f"{kind}:{seed}:{int(broken)}")
        if fires == ALL:
            self._fire_set = None
        else:
            n = min(fires, horizon)
            self._fire_set = (
                set(self._rng.sample(range(1, horizon + 1), n)) if n else
                set())
        #: Opportunity counter (bumped by :meth:`should_fire`).
        self.opportunities = 0
        #: Log of (opportunity, cpu_id, detail) for every injection.
        self.fired = []

    @property
    def name(self):
        """The replayable fault name (``kind`` or ``kind+broken``)."""
        return self.kind + ("+broken" if self.broken else "")

    @property
    def n_injections(self):
        return len(self.fired)

    # -- decision stream -----------------------------------------------

    def should_fire(self):
        """Count one opportunity; True if it was drawn to fire.

        Call exactly once per opportunity: the counter is part of the
        deterministic replay state.
        """
        self.opportunities += 1
        if self._fire_set is None:
            return True
        return self.opportunities in self._fire_set

    def choice(self, seq):
        """Deterministic pick from a (deterministically ordered!) seq."""
        return self._rng.choice(seq)

    def randint(self, lo, hi):
        return self._rng.randint(lo, hi)

    def record(self, cpu_id, **detail):
        """Log one injection (paired with Machine._fault_event)."""
        self.fired.append((self.opportunities, cpu_id, detail))

    def __repr__(self):
        return (f"FaultPlan({self.name!r}, seed={self.seed}, "
                f"fires={self.fires}, horizon={self.horizon}, "
                f"injected={self.n_injections})")


def make_plan(fault, seed, fires=None, horizon=None):
    """Build the plan for a fault *name* (``kind`` or ``kind+broken``)."""
    broken = fault.endswith("+broken")
    kind = fault[:-len("+broken")] if broken else fault
    return FaultPlan(kind, seed, broken=broken, fires=fires,
                     horizon=horizon)
