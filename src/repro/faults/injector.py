"""The fault injector: attach a :class:`FaultPlan` to a live machine.

A :class:`FaultInjector` uses the same wrap-the-seams technique as
:class:`repro.sim.trace.Tracer`: it replaces a handful of bound instance
attributes (``Machine._step``, ``HtmSystem.validate``, the violation
sink, ...) with wrappers, saves the originals, and ``detach()`` restores
them.  There are no ``if fault:`` branches in any hot path and zero
overhead when no injector is attached — the only permanent cost is a
``getattr(machine, "fault_hooks", None)`` probe on the two *cold* library
paths (txio syscalls, the allocator) that have no engine seam to wrap.

Which seams are wrapped depends on the plan's kind — see
:mod:`repro.faults.plan` for the taxonomy.  Every injection calls
``Machine._fault_event`` (so an attached Tracer records a ``fault``
event) and is logged in ``plan.fired``.

The non-broken kinds are *recoverable by design*: they respect the
paper's invariants (most importantly §6.1 — a VALIDATED transaction is
never violated; ``validated-abort`` devalidates first) so the runtime's
handlers and retry loops must absorb them without an oracle violation.
The ``+broken`` variants each break one recovery rule on purpose, for
the oracle self-tests.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan, make_plan  # noqa: F401 (re-export)
from repro.htm.system import ACTIVE, VALIDATED
from repro.isa.context import RUNNABLE


class FaultInjector:
    """Wires one :class:`FaultPlan` into a machine until detached."""

    def __init__(self, plan, machine):
        self.plan = plan
        self.machine = machine
        self._saved = {}
        #: Delayed-violation buffer: (due_step, violation) pairs.
        self._buffer = []
        self._steps = 0
        #: token-loss+broken: the arbitration is lost permanently.
        self._token_dead = False
        #: alloc-pressure+broken bookkeeping (per-CPU flags).
        self._suppress_im_store = set()
        self._violate_after_open_commit = set()
        self._attach()

    @property
    def n_injections(self):
        return self.plan.n_injections

    # ------------------------------------------------------------------

    def _event(self, cpu_id, **detail):
        self.plan.record(cpu_id, **detail)
        self.machine._fault_event(self.plan.name, cpu_id, detail)

    def _post(self, victim, level, addr):
        self.machine.htm.detector._post(
            victim, 1 << (level - 1), addr, -1)

    # ------------------------------------------------------------------
    # Attach / detach
    # ------------------------------------------------------------------

    def _attach(self):
        kind = self.plan.kind
        if kind == "spurious-violation":
            self._wrap_step(pre=self._maybe_spurious)
        elif kind == "delayed-violation":
            self._attach_delayed()
        elif kind == "token-loss":
            self._wrap_validate(self._validate_token_loss)
        elif kind == "validated-abort":
            self._wrap_validate(self._validate_forced_abort)
        elif kind == "handler-reentry":
            self._attach_reentry()
        elif kind == "watch-drop":
            self._wrap_step(pre=self._maybe_watch_drop)
        elif kind in ("io-fault", "alloc-pressure"):
            self.machine.fault_hooks = self
            self._saved["hooks"] = True
            if kind == "alloc-pressure" and self.plan.broken:
                self._attach_alloc_broken()
        elif kind == "drop-requeue":
            self._saved["requeue"] = [
                cpu.isa.requeue_enabled for cpu in self.machine.cpus]
            for cpu in self.machine.cpus:
                cpu.isa.requeue_enabled = False

    def detach(self):
        """Restore every wrapped seam; flush any still-delayed deliveries
        (a buffered violation must not simply vanish)."""
        if not self._saved:
            return
        machine = self.machine
        self._flush_delayed()
        if "step" in self._saved:
            machine._step = self._saved["step"]
        if "validate" in self._saved:
            machine.htm.validate = self._saved["validate"]
        if "sink" in self._saved:
            machine.htm.detector._sink = self._saved["sink"]
        if "park" in self._saved:
            machine._park = self._saved["park"]
        if "push" in self._saved:
            machine._push_dispatcher = self._saved["push"]
        if "im_store" in self._saved:
            machine.htm.im_store = self._saved["im_store"]
        if "commit" in self._saved:
            machine.htm.commit = self._saved["commit"]
        if "hooks" in self._saved:
            machine.fault_hooks = None
        if "requeue" in self._saved:
            for cpu, enabled in zip(machine.cpus, self._saved["requeue"]):
                cpu.isa.requeue_enabled = enabled
        self._saved = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.detach()
        return False

    # ------------------------------------------------------------------
    # Shared seam helpers
    # ------------------------------------------------------------------

    def _wrap_step(self, pre):
        machine = self.machine
        self._saved["step"] = machine._step

        def step(cpu, _orig=machine._step):
            pre(cpu)
            _orig(cpu)

        machine._step = step

    def _wrap_validate(self, impl):
        htm = self.machine.htm
        self._saved["validate"] = htm.validate

        def validate(cpu_id, _orig=htm.validate):
            return impl(cpu_id, _orig)

        htm.validate = validate

    # ------------------------------------------------------------------
    # spurious-violation
    # ------------------------------------------------------------------

    def _maybe_spurious(self, _cpu):
        htm = self.machine.htm
        eligible = []
        for state in htm.states:
            if not state.in_tx():
                continue
            if htm.serial_owner == state.cpu_id:
                continue
            if state.is_validated():
                # §6.1: a CPU with a validated level is mid-commit;
                # spurious hardware noise must never target it.
                continue
            eligible += [
                (state.cpu_id, lvl)
                for lvl, info in enumerate(state.levels, start=1)
                if info.status == ACTIVE]
        if not eligible:
            return
        if not self.plan.should_fire():
            return
        victim, level = self.plan.choice(eligible)
        if self.plan.broken:
            # Mis-recovery: the hardware acts on the noise — the level
            # rolls back and restarts — but the handler invocation is
            # dropped, so software keeps executing the stale
            # continuation against the restarted transaction.  Writes
            # issued before the silent rollback vanish from the set the
            # eventual commit publishes (a lost-update anomaly for the
            # serializability oracle).
            self.machine.cpus[victim].do_rollback(level)
            self._event(victim, level=level, silent=True)
            return
        reads = sorted(htm.states[victim].rwsets.reads_at(level))
        addr = self.plan.choice(reads) if reads else 0
        self._post(victim, level, addr)
        self._event(victim, level=level, addr=addr)

    # ------------------------------------------------------------------
    # delayed-violation
    # ------------------------------------------------------------------

    def _attach_delayed(self):
        machine = self.machine
        htm = machine.htm

        self._saved["sink"] = htm.detector._sink

        def sink(violation, _orig=htm.detector._sink):
            victim = machine.cpus[violation.victim]
            # Only a runnable victim can tolerate a hold-back; WAITING
            # and DONE victims need the post now (delivery is the wake).
            # A victim that already validated also needs it now: the
            # xvalidate barrier below only covers violations detected
            # *before* validate entry, so a hold-back landing in the
            # validate->commit window would straddle the commit — the
            # rule-break reserved for the +broken variant.
            delayable = victim.state == RUNNABLE and (
                self.plan.broken
                or not htm.states[violation.victim].is_validated())
            if delayable and self.plan.should_fire():
                # The +broken hold-back is long enough to straddle the
                # victim's whole commit — only the (omitted) xvalidate
                # barrier could save it then.
                delay = (self.plan.randint(20, 60) if self.plan.broken
                         else self.plan.randint(2, 6))
                self._buffer.append((self._steps + delay, violation))
                self._event(violation.victim, delay=delay,
                            mask=violation.mask)
                return
            _orig(violation)

        htm.detector._sink = sink

        self._wrap_step(pre=self._delayed_tick)

        if not self.plan.broken:
            # The soundness barrier: a CPU entering xvalidate first
            # receives everything delayed against it, and the validate
            # is retried — so a transaction can never validate past a
            # violation the hardware already detected (§6.1 again, from
            # the delivery side).  The +broken variant omits exactly
            # this, letting a stale transaction commit.
            self._wrap_validate(self._validate_delayed_barrier)

        self._saved["park"] = machine._park

        def park(cpu, _orig=machine._park):
            _orig(cpu)
            # Flush after parking: deliver() sees WAITING and wakes, so
            # a delayed violation can never strand a sleeper.
            self._flush_for(cpu.cpu_id)

        machine._park = park

    def _delayed_tick(self, _cpu):
        self._steps += 1
        if self._buffer:
            due = [v for when, v in self._buffer if when <= self._steps]
            if due:
                self._buffer = [
                    (when, v) for when, v in self._buffer
                    if when > self._steps]
                deliver = self._saved["sink"]
                for violation in due:
                    deliver(violation)

    def _validate_delayed_barrier(self, cpu_id, orig):
        if self._flush_for(cpu_id):
            return False  # stall: the delivery preempts the validate
        return orig(cpu_id)

    def _flush_for(self, cpu_id):
        due = [v for _, v in self._buffer if v.victim == cpu_id]
        if not due:
            return False
        self._buffer = [
            (when, v) for when, v in self._buffer if v.victim != cpu_id]
        deliver = self._saved["sink"]
        for violation in due:
            deliver(violation)
        return True

    def _flush_delayed(self):
        if not self._buffer:
            return
        deliver = self._saved.get("sink")
        if deliver is None:
            return
        for _, violation in self._buffer:
            deliver(violation)
        self._buffer = []

    # ------------------------------------------------------------------
    # token-loss / validated-abort (xvalidate seam)
    # ------------------------------------------------------------------

    def _validate_token_loss(self, cpu_id, orig):
        if self._token_dead:
            return False
        if self.plan.should_fire():
            if self.plan.broken:
                # The token is never re-granted: no publishing commit
                # can ever complete again (caught as a cycle overrun).
                self._token_dead = True
            self._event(cpu_id, permanent=self.plan.broken)
            return False
        return orig(cpu_id)

    def _validate_forced_abort(self, cpu_id, orig):
        ok = orig(cpu_id)
        if not ok:
            return ok
        htm = self.machine.htm
        state = htm.states[cpu_id]
        if state.flatten_extra or not state.in_tx():
            return ok
        if state.current().status != VALIDATED:
            return ok
        if not self.plan.should_fire():
            return ok
        level = htm.devalidate(cpu_id)
        if not level:
            return ok
        writes = sorted(state.rwsets.writes_at(level))
        addr = self.plan.choice(writes) if writes else 0
        if self.plan.broken:
            # Silent rollback with no violation and no handlers: the
            # restarted (empty) transaction re-validates and commits,
            # so the program believes its writes landed.
            self.machine.cpus[cpu_id].do_rollback(level)
            self._event(cpu_id, level=level, silent=True)
            return False
        # §6.1-safe forced abort between xvalidate and xcommit: leave
        # the validated set first, then violate.
        self._post(cpu_id, level, addr)
        self._event(cpu_id, level=level, addr=addr)
        return False

    # ------------------------------------------------------------------
    # handler-reentry
    # ------------------------------------------------------------------

    def _attach_reentry(self):
        machine = self.machine
        self._saved["push"] = machine._push_dispatcher

        def push(cpu, kind, _orig=machine._push_dispatcher):
            _orig(cpu, kind)
            if kind == "violation":
                self._after_violation_dispatch(cpu)

        machine._push_dispatcher = push

    def _after_violation_dispatch(self, cpu):
        if self.plan.broken:
            # Corrupt the §6b.2 register-restore chain: drop the saved
            # (xvcurrent, xvaddr) of the frame this dispatch interrupted.
            # When a nested rollback later destroys that frame, the
            # record it was handling cannot be re-queued.
            if cpu.dispatch_depth >= 2 and self.plan.should_fire():
                saved = cpu.saved_viol.pop(len(cpu.frames) - 2, None)
                if saved is not None:
                    self._event(cpu.cpu_id, lost_mask=saved[0])
            return
        state = self.machine.htm.states[cpu.cpu_id]
        if not state.in_tx() or state.is_validated():
            return
        levels = [lvl for lvl, info in enumerate(state.levels, start=1)
                  if info.status == ACTIVE]
        if not levels:
            return
        if not self.plan.should_fire():
            return
        # A new conflict lands while reporting is off: it queues, and
        # re-invokes the handler after xvret (§4.6) — or immediately, if
        # the handler re-enables reporting for an open transaction.
        level = self.plan.choice(levels)
        reads = sorted(state.rwsets.reads_at(level))
        addr = self.plan.choice(reads) if reads else 0
        self._post(cpu.cpu_id, level, addr)
        self._event(cpu.cpu_id, level=level, addr=addr)

    # ------------------------------------------------------------------
    # watch-drop
    # ------------------------------------------------------------------

    def _maybe_watch_drop(self, cpu):
        if cpu.daemon:
            # The condsync scheduler's watch set IS its wakeup mechanism;
            # hardware watch loss there is unrecoverable by design (the
            # paper's scheme assumes the watch set persists).
            return
        htm = self.machine.htm
        state = htm.states[cpu.cpu_id]
        if not state.in_tx() or state.is_validated():
            return
        candidates = []
        for lvl, info in enumerate(state.levels, start=1):
            if info.status != ACTIVE:
                continue
            reads = state.rwsets.reads_at(lvl)
            if reads:
                candidates.append((lvl, reads))
        if not candidates:
            return
        if not self.plan.should_fire():
            return
        level, reads = self.plan.choice(candidates)
        unit = self.plan.choice(sorted(reads))
        state.rwsets.release(level, unit)
        if not self.plan.broken:
            # The hardware notices the capacity loss and conservatively
            # violates the level it dropped from — the safe recovery.
            # The +broken variant drops silently: the transaction keeps
            # running on a read it no longer tracks.
            self._post(cpu.cpu_id, level, unit)
        self._event(cpu.cpu_id, level=level, unit=unit,
                    silent=self.plan.broken)

    # ------------------------------------------------------------------
    # io-fault / alloc-pressure (machine.fault_hooks interface)
    # ------------------------------------------------------------------

    def on_io(self, t, f, op, items):
        """Hook from txio's syscall paths (a generator: charges cycles)."""
        if self.plan.kind != "io-fault":
            return
        if not self.plan.should_fire():
            return
        if self.plan.broken and op == "append":
            # Failure *after* the device effect, retried blindly by the
            # (broken) wrapper: the append lands twice.
            f.device_append(items)
            self._event(t.cpu_id, op=op, duplicated=len(items))
        else:
            # Transient failure (EINTR-style): the syscall is charged
            # again and retried — no effect was performed.
            self._event(t.cpu_id, op=op, transient=True)
        yield t.alu(self.machine.config.syscall_cycles)

    def on_alloc(self, t, n_words):
        """Hook from TxAlloc's open-nested allocation (a generator)."""
        if self.plan.kind != "alloc-pressure":
            return
        if not self.plan.should_fire():
            return
        if self.plan.broken:
            # Break the §6b.6 arm-before-effect recipe: the slot-arming
            # imst after this allocation is lost, and the parent is
            # violated right after the open commit — the compensation
            # handler then finds a disarmed slot and leaks the block.
            self._suppress_im_store.add(t.cpu_id)
            self._violate_after_open_commit.add(t.cpu_id)
            self._event(t.cpu_id, n_words=n_words, suppressed_arming=True)
            yield t.alu(25)
            return
        self._event(t.cpu_id, n_words=n_words, delay=25)
        yield t.alu(25)
        depth = t.depth()
        if depth >= 1:
            # Pressure response: self-violate the open allocation
            # transaction; its atomic wrapper retries the allocation.
            self._post(t.cpu_id, depth, 0)

    def _attach_alloc_broken(self):
        htm = self.machine.htm
        self._saved["im_store"] = htm.im_store

        def im_store(cpu_id, addr, value, _orig=htm.im_store):
            if cpu_id in self._suppress_im_store:
                self._suppress_im_store.discard(cpu_id)
                return  # the arming store is lost under pressure
            _orig(cpu_id, addr, value)

        htm.im_store = im_store

        self._saved["commit"] = htm.commit

        def commit(cpu_id, _orig=htm.commit):
            result = _orig(cpu_id)
            if (result.kind == "open"
                    and cpu_id in self._violate_after_open_commit):
                self._violate_after_open_commit.discard(cpu_id)
                depth = htm.depth(cpu_id)
                if depth >= 1:
                    self._post(cpu_id, depth, 0)
            return result

        htm.commit = commit


def attach_fault(machine, fault, seed, **plan_kwargs):
    """Convenience: build the plan and attach an injector in one call."""
    return FaultInjector(make_plan(fault, seed, **plan_kwargs), machine)
