"""Build-time allocation of the shared address space.

A :class:`SharedArena` hands out shared-heap addresses while a workload is
being *constructed* (before the machine runs), and can pre-initialize the
memory image — the moral equivalent of the loader laying out ``.data``.
Run-time (transactional) allocation is the job of
:class:`repro.mem.heap.SharedHeap`.
"""

from __future__ import annotations

from repro.common.addr import PRIVATE_BASE, SHARED_BASE
from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE


class SharedArena:
    """Bump allocator over the shared segment, used at build time."""

    def __init__(self, machine, base=SHARED_BASE):
        self._machine = machine
        self._next = base

    @property
    def config(self):
        return self._machine.config

    @property
    def memory(self):
        return self._machine.memory

    def alloc(self, n_words, line_align=False, isolate=False):
        """Allocate ``n_words``; returns the base address.

        ``line_align`` starts the block on a cache-line boundary;
        ``isolate`` additionally pads the block to a whole number of lines
        so it shares its line(s) with nothing else (used for variables
        like ``schedcomm`` where false sharing would change semantics).
        """
        line = self.config.line_size
        if line_align or isolate:
            self._next += (-self._next) % line
        addr = self._next
        size = n_words * WORD_SIZE
        if isolate:
            size += (-size) % line
        self._next += size
        if self._next > PRIVATE_BASE:
            raise MemoryError_("shared arena exhausted")
        return addr

    def alloc_word(self, initial=0, isolate=False):
        """Allocate and initialize a single word."""
        addr = self.alloc(1, isolate=isolate)
        self.memory.write(addr, initial)
        return addr

    def alloc_block(self, values, line_align=False):
        """Allocate and initialize a block of words."""
        addr = self.alloc(len(values), line_align=line_align)
        self.memory.write_block(addr, values)
        return addr
