"""An open-addressing hash table in simulated shared memory.

Linear probing over (key, value) slot pairs; key 0 is reserved as the
empty marker.  Used by workloads that need keyed shared state without the
B-tree's depth (e.g. the mp3d-like collision cells).
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE

_EMPTY = 0


class HashMap:
    """Fixed-capacity shared hash map with non-zero integer keys."""

    def __init__(self, arena, capacity):
        self.capacity = capacity
        self.slots = arena.alloc(capacity * 2, line_align=True)

    def _slot(self, index):
        return self.slots + (index % self.capacity) * 2 * WORD_SIZE

    def _probe(self, key):
        if key == _EMPTY:
            raise MemoryError_("hash map keys must be non-zero")
        # Knuth multiplicative hash keeps probe starts well spread.
        return (key * 2654435761) % self.capacity

    def put(self, t, key, value):
        """Insert or overwrite ``key``; raises when full."""
        index = self._probe(key)
        for _ in range(self.capacity):
            slot = self._slot(index)
            k = yield t.load(slot)
            if k in (_EMPTY, key):
                if k == _EMPTY:
                    yield t.store(slot, key)
                yield t.store(slot + WORD_SIZE, value)
                return
            index += 1
        raise MemoryError_("hash map full")

    def get(self, t, key):
        """Return the value for ``key`` or None."""
        index = self._probe(key)
        for _ in range(self.capacity):
            slot = self._slot(index)
            k = yield t.load(slot)
            if k == _EMPTY:
                return None
            if k == key:
                value = yield t.load(slot + WORD_SIZE)
                return value
            index += 1
        return None

    def add(self, t, key, delta, default=0):
        """Add ``delta`` to ``key``'s value (inserting ``default`` first if
        absent); returns the new value."""
        index = self._probe(key)
        for _ in range(self.capacity):
            slot = self._slot(index)
            k = yield t.load(slot)
            if k == _EMPTY:
                yield t.store(slot, key)
                yield t.store(slot + WORD_SIZE, default + delta)
                return default + delta
            if k == key:
                value = yield t.load(slot + WORD_SIZE)
                value += delta
                yield t.store(slot + WORD_SIZE, value)
                return value
            index += 1
        raise MemoryError_("hash map full")
