"""Host-side execution of simulated code (no machine, no timing).

Data-structure methods in :mod:`repro.mem` are generators yielding
operations.  :func:`run_host` drives such a generator directly against a
:class:`~repro.memsys.memory.MemoryImage` — no transactions, no timing —
which is exactly what a loader needs to pre-populate shared structures
before the measured run, and what unit tests use to exercise structure
logic in isolation.
"""

from __future__ import annotations

from repro.common.errors import SimulationError
from repro.sim import ops as O


class HostContext:
    """A stand-in for the CPU handle: only the op constructors."""

    cpu_id = -1

    def load(self, addr):
        return O.Load(addr)

    def store(self, addr, value):
        return O.Store(addr, value)

    def imld(self, addr):
        return O.ImLoad(addr)

    def imst(self, addr, value):
        return O.ImStore(addr, value)

    def imstid(self, addr, value):
        return O.ImStoreId(addr, value)

    def release(self, addr):
        return O.Release(addr)

    def alu(self, cycles=1):
        return O.Alu(cycles)


def run_host(generator, memory):
    """Drive ``generator`` to completion against ``memory``; returns its
    return value.  Only data operations are meaningful; ALU and release
    ops are no-ops, and transactional control ops are rejected."""
    value = None
    while True:
        try:
            op = generator.send(value)
        except StopIteration as stop:
            return stop.value
        if isinstance(op, (O.Load, O.ImLoad)):
            value = memory.read(op.addr)
        elif isinstance(op, (O.Store, O.ImStore, O.ImStoreId)):
            memory.write(op.addr, op.value)
            value = None
        elif isinstance(op, (O.Alu, O.Release, O.Fence)):
            value = None
        else:
            raise SimulationError(
                f"host execution cannot run transactional op {op!r}")


def host(fn, memory, *args):
    """Convenience: ``host(tree.insert, memory, key, value)``."""
    return run_host(fn(HostContext(), *args), memory)
