"""A bounded multi-word-item FIFO queue in simulated shared memory.

Used by the condsync runtime as the scheduler command queue (paper
Figure 3) and by workloads as a generic producer/consumer buffer.  The
head and tail counters live on separate cache lines so enqueuers and the
dequeuer do not false-share.

Operations are plain transactional code: callers run them inside a
transaction (usually an open-nested one) and the HTM provides atomicity.
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE


class BoundedQueue:
    """Circular FIFO of fixed-size items."""

    def __init__(self, arena, capacity, item_words=1):
        if capacity < 1 or item_words < 1:
            raise MemoryError_("queue needs capacity >= 1, item_words >= 1")
        self.capacity = capacity
        self.item_words = item_words
        self.head_addr = arena.alloc_word(0, isolate=True)  # next to dequeue
        self.tail_addr = arena.alloc_word(0, isolate=True)  # next to enqueue
        self.slots = arena.alloc(capacity * item_words, line_align=True)

    def _slot_addr(self, index):
        return self.slots + (index % self.capacity) * \
            self.item_words * WORD_SIZE

    # -- transactional operations ------------------------------------------------

    def try_enqueue(self, t, item):
        """Append ``item`` (sequence of ``item_words`` words); returns
        False if the queue is full."""
        if len(item) != self.item_words:
            raise MemoryError_(
                f"item has {len(item)} words, queue holds {self.item_words}")
        tail = yield t.load(self.tail_addr)
        head = yield t.load(self.head_addr)
        if tail - head >= self.capacity:
            return False
        base = self._slot_addr(tail)
        for i, word in enumerate(item):
            yield t.store(base + i * WORD_SIZE, word)
        yield t.store(self.tail_addr, tail + 1)
        return True

    def enqueue(self, t, item):
        """Append ``item``; raises if full (callers size queues so this
        cannot happen in a committed execution)."""
        ok = yield from self.try_enqueue(t, item)
        if not ok:
            raise MemoryError_("bounded queue overflow")

    def try_dequeue(self, t):
        """Pop the oldest item (list of words), or None if empty."""
        head = yield t.load(self.head_addr)
        tail = yield t.load(self.tail_addr)
        if head == tail:
            return None
        base = self._slot_addr(head)
        item = []
        for i in range(self.item_words):
            item.append((yield t.load(base + i * WORD_SIZE)))
        yield t.store(self.head_addr, head + 1)
        return item

    def size(self, t):
        head = yield t.load(self.head_addr)
        tail = yield t.load(self.tail_addr)
        return tail - head

    # -- non-tracked peek (polling without read-set pollution) --------------------

    def im_nonempty(self, t):
        """Immediate-load peek: is there (probably) an item?  Used by
        polling loops that must not add queue state to their read-set."""
        head = yield t.imld(self.head_addr)
        tail = yield t.imld(self.tail_addr)
        return tail != head
