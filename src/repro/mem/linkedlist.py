"""A singly-linked list in simulated memory, with early-release traversal.

The paper keeps the ``release`` instruction out of high-level languages
but uses it "in low-level code" (§4.7).  The canonical pattern is
hand-over-hand traversal: a reader walking a long list drops each node
from its read-set once it has moved past it, keeping only a sliding
window.  A concurrent writer mutating the *already-passed* prefix then
no longer violates the reader — at the documented price: the traversal
is no longer atomic over the whole list, only over the retained window.

Node layout (words): [value, next_addr]; next = 0 terminates.
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE

_VALUE = 0
_NEXT = 1
NODE_WORDS = 2


class LinkedList:
    """A shared singly-linked list with a node pool."""

    def __init__(self, arena, capacity_nodes):
        self.capacity = capacity_nodes
        # One node per cache line: list neighbours must not false-share.
        line_words = arena.config.line_size // WORD_SIZE
        self._node_stride = line_words * WORD_SIZE
        self.pool = arena.alloc(capacity_nodes * line_words,
                                line_align=True)
        self.head_addr = arena.alloc_word(0, isolate=True)
        self.next_free_addr = arena.alloc_word(0, isolate=True)

    def _node_addr(self, index):
        return self.pool + index * self._node_stride

    # -- transactional operations ------------------------------------------------

    def _alloc_node(self, t):
        index = yield t.load(self.next_free_addr)
        if index >= self.capacity:
            raise MemoryError_("linked-list node pool exhausted")
        yield t.store(self.next_free_addr, index + 1)
        return self._node_addr(index)

    def push_front(self, t, value):
        """Prepend ``value``."""
        node = yield from self._alloc_node(t)
        head = yield t.load(self.head_addr)
        yield t.store(node + _VALUE * WORD_SIZE, value)
        yield t.store(node + _NEXT * WORD_SIZE, head)
        yield t.store(self.head_addr, node)
        return node

    def set_value(self, t, node, value):
        """Overwrite a node's value in place."""
        yield t.store(node + _VALUE * WORD_SIZE, value)

    def find_node(self, t, value):
        """Address of the first node holding ``value``, or 0."""
        node = yield t.load(self.head_addr)
        while node:
            current = yield t.load(node + _VALUE * WORD_SIZE)
            if current == value:
                return node
            node = yield t.load(node + _NEXT * WORD_SIZE)
        return 0

    def traverse_sum(self, t, early_release=False):
        """Walk the whole list summing values.

        With ``early_release`` each node (and the head pointer, once
        past) is dropped from the read-set after use — writers to the
        passed prefix no longer conflict with this walker (§4.7).
        """
        total = 0
        previous = None
        node = yield t.load(self.head_addr)
        if early_release:
            yield t.release(self.head_addr)
        while node:
            value = yield t.load(node + _VALUE * WORD_SIZE)
            nxt = yield t.load(node + _NEXT * WORD_SIZE)
            total += value
            if early_release and previous is not None:
                yield t.release(previous)
            previous = node
            node = nxt
        if early_release and previous is not None:
            yield t.release(previous)
        return total

    # -- host-side (tests) ---------------------------------------------------------

    def values_host(self, memory):
        out = []
        node = memory.read(self.head_addr)
        while node:
            out.append(memory.read(node + _VALUE * WORD_SIZE))
            node = memory.read(node + _NEXT * WORD_SIZE)
        return out
