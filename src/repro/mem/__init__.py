"""Data structures over the simulated shared address space.

Everything here issues simulated loads/stores, so these structures
participate in caching, conflict detection, and timing exactly like the
workload's own data.
"""

from repro.mem.array import LineArray, WordArray
from repro.mem.btree import BTree
from repro.mem.hashmap import HashMap
from repro.mem.heap import SharedHeap
from repro.mem.layout import SharedArena
from repro.mem.linkedlist import LinkedList
from repro.mem.queue import BoundedQueue

__all__ = [
    "BTree",
    "LineArray",
    "BoundedQueue",
    "HashMap",
    "LinkedList",
    "SharedArena",
    "SharedHeap",
    "WordArray",
]
