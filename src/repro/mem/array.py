"""Typed word arrays over simulated memory.

All accessors are generator functions: they yield simulated loads/stores
so array traffic participates in caching, conflict detection, and timing.
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE


class WordArray:
    """A fixed-length array of words in the (shared) address space."""

    def __init__(self, arena, length, initial=0, line_align=True):
        self.length = length
        if isinstance(initial, (list, tuple)):
            if len(initial) != length:
                raise MemoryError_("initializer length mismatch")
            values = list(initial)
        else:
            values = [initial] * length
        self.base = arena.alloc_block(values, line_align=line_align)

    def addr(self, index):
        if not 0 <= index < self.length:
            raise MemoryError_(
                f"array index {index} out of range [0, {self.length})")
        return self.base + index * WORD_SIZE

    # -- transactional accessors ------------------------------------------------

    def get(self, t, index):
        value = yield t.load(self.addr(index))
        return value

    def set(self, t, index, value):
        yield t.store(self.addr(index), value)

    def add(self, t, index, delta):
        """Read-modify-write; returns the new value."""
        addr = self.addr(index)
        value = yield t.load(addr)
        value = value + delta
        yield t.store(addr, value)
        return value

    # -- immediate accessors (private/read-only data, §4.7) ---------------------

    def im_get(self, t, index):
        value = yield t.imld(self.addr(index))
        return value

    def im_set(self, t, index, value):
        yield t.imst(self.addr(index), value)


class LineArray(WordArray):
    """A word array placing each element on its own cache line.

    Use this for contended cells (e.g. the mp3d collision pool): with
    line-granularity conflict tracking, packing independent cells into one
    line would make logically disjoint updates conflict (false sharing),
    which changes workload semantics rather than just performance.
    """

    def __init__(self, arena, length, initial=0):
        from repro.common.params import WORD_SIZE

        self.length = length
        words_per_line = arena.config.line_size // WORD_SIZE
        self._stride = words_per_line * WORD_SIZE
        if isinstance(initial, (list, tuple)):
            if len(initial) != length:
                raise MemoryError_("initializer length mismatch")
            values = list(initial)
        else:
            values = [initial] * length
        self.base = arena.alloc(length * words_per_line, line_align=True)
        for i, value in enumerate(values):
            arena.memory.write(self.base + i * self._stride, value)

    def addr(self, index):
        if not 0 <= index < self.length:
            raise MemoryError_(
                f"array index {index} out of range [0, {self.length})")
        return self.base + index * self._stride
