"""A B-tree in simulated shared memory.

This is the central data structure of the SPECjbb-like workload (the
paper parallelizes SPECjbb2000 whose warehouses are B-trees, §7.1).  The
tree is a classic CLRS B-tree of minimum degree ``t``: every node holds up
to ``2t - 1`` sorted keys with one value word per key; internal nodes hold
child pointers.  All traffic goes through simulated loads/stores, so
concurrent operations conflict exactly where a hardware TM would see them
conflict: on the node lines they touch.

Operations are *plain transactional code*: callers wrap them in ``atomic``
(or run them inside a larger transaction — the transparent-library case
that motivates closed nesting).
"""

from __future__ import annotations

from repro.common.errors import MemoryError_
from repro.common.params import WORD_SIZE

#: Minimum degree (CLRS ``t``): nodes hold t-1 .. 2t-1 keys.
MIN_DEGREE = 4
MAX_KEYS = 2 * MIN_DEGREE - 1
MAX_CHILDREN = 2 * MIN_DEGREE

# Node field offsets (in words).
_N_KEYS = 0
_LEAF = 1
_KEYS = 2
_VALUES = _KEYS + MAX_KEYS
_CHILDREN = _VALUES + MAX_KEYS
NODE_WORDS = _CHILDREN + MAX_CHILDREN


class BTree:
    """A shared-memory B-tree with upsert and lookup."""

    def __init__(self, arena, capacity_nodes):
        self.capacity_nodes = capacity_nodes
        self.node_bytes = NODE_WORDS * WORD_SIZE
        self.pool = arena.alloc(capacity_nodes * NODE_WORDS, line_align=True)
        # Node 0 is the initial root: empty leaf.
        arena.memory.write(self.pool + _N_KEYS * WORD_SIZE, 0)
        arena.memory.write(self.pool + _LEAF * WORD_SIZE, 1)
        self.next_node_addr = arena.alloc_word(1, isolate=True)
        self.root_ptr_addr = arena.alloc_word(self.pool, isolate=True)

    # -- node field helpers -------------------------------------------------

    def _f(self, node, field, index=0):
        return node + (field + index) * WORD_SIZE

    def _alloc_node(self, t, leaf):
        index = yield t.load(self.next_node_addr)
        if index >= self.capacity_nodes:
            raise MemoryError_("B-tree node pool exhausted")
        yield t.store(self.next_node_addr, index + 1)
        node = self.pool + index * self.node_bytes
        yield t.store(self._f(node, _N_KEYS), 0)
        yield t.store(self._f(node, _LEAF), 1 if leaf else 0)
        return node

    # -- lookup ----------------------------------------------------------------

    def lookup(self, t, key):
        """Return the value for ``key``, or None."""
        node = yield t.load(self.root_ptr_addr)
        while True:
            n = yield t.load(self._f(node, _N_KEYS))
            i = 0
            while i < n:
                k = yield t.load(self._f(node, _KEYS, i))
                if key == k:
                    value = yield t.load(self._f(node, _VALUES, i))
                    return value
                if key < k:
                    break
                i += 1
            leaf = yield t.load(self._f(node, _LEAF))
            if leaf:
                return None
            node = yield t.load(self._f(node, _CHILDREN, i))

    # -- insert / upsert ----------------------------------------------------------

    def insert(self, t, key, value):
        """Insert ``key`` -> ``value`` (update in place if present).

        Returns True if the key was new."""
        root = yield t.load(self.root_ptr_addr)
        n = yield t.load(self._f(root, _N_KEYS))
        if n == MAX_KEYS:
            new_root = yield from self._alloc_node(t, leaf=False)
            yield t.store(self._f(new_root, _LEAF), 0)
            yield t.store(self._f(new_root, _CHILDREN, 0), root)
            yield from self._split_child(t, new_root, 0, root)
            yield t.store(self.root_ptr_addr, new_root)
            root = new_root
        inserted = yield from self._insert_nonfull(t, root, key, value)
        return inserted

    def update(self, t, key, delta):
        """Add ``delta`` to the value of ``key``; returns the new value or
        None if the key is absent."""
        node = yield t.load(self.root_ptr_addr)
        while True:
            n = yield t.load(self._f(node, _N_KEYS))
            i = 0
            while i < n:
                k = yield t.load(self._f(node, _KEYS, i))
                if key == k:
                    addr = self._f(node, _VALUES, i)
                    value = yield t.load(addr)
                    value += delta
                    yield t.store(addr, value)
                    return value
                if key < k:
                    break
                i += 1
            leaf = yield t.load(self._f(node, _LEAF))
            if leaf:
                return None
            node = yield t.load(self._f(node, _CHILDREN, i))

    def _insert_nonfull(self, t, node, key, value):
        while True:
            n = yield t.load(self._f(node, _N_KEYS))
            # Find position (and catch exact matches -> update in place).
            i = 0
            while i < n:
                k = yield t.load(self._f(node, _KEYS, i))
                if key == k:
                    yield t.store(self._f(node, _VALUES, i), value)
                    return False
                if key < k:
                    break
                i += 1
            leaf = yield t.load(self._f(node, _LEAF))
            if leaf:
                # Shift keys/values right of position i and insert.
                j = n
                while j > i:
                    k = yield t.load(self._f(node, _KEYS, j - 1))
                    v = yield t.load(self._f(node, _VALUES, j - 1))
                    yield t.store(self._f(node, _KEYS, j), k)
                    yield t.store(self._f(node, _VALUES, j), v)
                    j -= 1
                yield t.store(self._f(node, _KEYS, i), key)
                yield t.store(self._f(node, _VALUES, i), value)
                yield t.store(self._f(node, _N_KEYS), n + 1)
                return True
            child = yield t.load(self._f(node, _CHILDREN, i))
            child_n = yield t.load(self._f(child, _N_KEYS))
            if child_n == MAX_KEYS:
                yield from self._split_child(t, node, i, child)
                median = yield t.load(self._f(node, _KEYS, i))
                if key == median:
                    yield t.store(self._f(node, _VALUES, i), value)
                    return False
                if key > median:
                    i += 1
                child = yield t.load(self._f(node, _CHILDREN, i))
            node = child

    def _split_child(self, t, parent, i, child):
        """CLRS B-Tree-Split-Child: ``child`` (full) splits around its
        median key, which moves up into ``parent`` at position ``i``."""
        mid = MIN_DEGREE - 1
        child_leaf = yield t.load(self._f(child, _LEAF))
        sibling = yield from self._alloc_node(t, leaf=bool(child_leaf))
        yield t.store(self._f(sibling, _LEAF), child_leaf)
        # Upper keys/values move to the new sibling.
        for j in range(MIN_DEGREE - 1):
            k = yield t.load(self._f(child, _KEYS, j + MIN_DEGREE))
            v = yield t.load(self._f(child, _VALUES, j + MIN_DEGREE))
            yield t.store(self._f(sibling, _KEYS, j), k)
            yield t.store(self._f(sibling, _VALUES, j), v)
        if not child_leaf:
            for j in range(MIN_DEGREE):
                c = yield t.load(self._f(child, _CHILDREN, j + MIN_DEGREE))
                yield t.store(self._f(sibling, _CHILDREN, j), c)
        yield t.store(self._f(sibling, _N_KEYS), MIN_DEGREE - 1)
        yield t.store(self._f(child, _N_KEYS), mid)
        # Shift the parent's keys/children right and adopt the median.
        parent_n = yield t.load(self._f(parent, _N_KEYS))
        j = parent_n
        while j > i:
            k = yield t.load(self._f(parent, _KEYS, j - 1))
            v = yield t.load(self._f(parent, _VALUES, j - 1))
            yield t.store(self._f(parent, _KEYS, j), k)
            yield t.store(self._f(parent, _VALUES, j), v)
            j -= 1
        j = parent_n + 1
        while j > i + 1:
            c = yield t.load(self._f(parent, _CHILDREN, j - 1))
            yield t.store(self._f(parent, _CHILDREN, j), c)
            j -= 1
        med_k = yield t.load(self._f(child, _KEYS, mid))
        med_v = yield t.load(self._f(child, _VALUES, mid))
        yield t.store(self._f(parent, _KEYS, i), med_k)
        yield t.store(self._f(parent, _VALUES, i), med_v)
        yield t.store(self._f(parent, _CHILDREN, i + 1), sibling)
        yield t.store(self._f(parent, _N_KEYS), parent_n + 1)

    # -- range / diagnostics -----------------------------------------------------

    def count(self, t):
        """Number of keys in the tree (full scan; test/diagnostic use)."""
        total = yield from self._count_node(
            t, (yield t.load(self.root_ptr_addr)))
        return total

    def _count_node(self, t, node):
        n = yield t.load(self._f(node, _N_KEYS))
        total = n
        leaf = yield t.load(self._f(node, _LEAF))
        if not leaf:
            for i in range(n + 1):
                child = yield t.load(self._f(node, _CHILDREN, i))
                total += yield from self._count_node(t, child)
        return total

    def items_host(self, memory):
        """Host-side (non-simulated) in-order dump, for test assertions."""
        root = memory.read(self.root_ptr_addr)
        out = []
        self._dump(memory, root, out)
        return out

    def _dump(self, memory, node, out):
        n = memory.read(self._f(node, _N_KEYS))
        leaf = memory.read(self._f(node, _LEAF))
        for i in range(n):
            if not leaf:
                self._dump(memory,
                           memory.read(self._f(node, _CHILDREN, i)), out)
            out.append((memory.read(self._f(node, _KEYS, i)),
                        memory.read(self._f(node, _VALUES, i))))
        if not leaf:
            self._dump(memory, memory.read(self._f(node, _CHILDREN, n)), out)
