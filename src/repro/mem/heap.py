"""A run-time shared-memory allocator (the ``brk``/free-list substrate).

The paper's memory-allocator example (Section 5) performs allocation as an
open-nested transaction — including the ``brk`` system call — and, for
unmanaged languages, registers a violation handler that frees the memory
if the user transaction aborts.  This module provides the allocator those
semantics sit on; :mod:`repro.runtime.alloc` adds the open nesting and
compensation.

Design: a segregated-free-list-free, first-fit, singly-linked free list
with block headers in simulated memory:

    header word 0: block size in words (payload, excluding header)
    header word 1: next free block address (free blocks only)

Shared metadata (free-list head, brk pointer) is ordinary shared memory,
so concurrent allocations conflict exactly as they would on real TM.
"""

from __future__ import annotations

from repro.common.errors import HeapError
from repro.common.params import WORD_SIZE

_HDR_WORDS = 2


class SharedHeap:
    """First-fit free-list allocator over a shared-memory region."""

    def __init__(self, arena, region_words):
        self.region_words = region_words
        self.base = arena.alloc(region_words, line_align=True)
        self.limit = self.base + region_words * WORD_SIZE
        self.free_head_addr = arena.alloc_word(0, isolate=True)
        self.brk_addr = arena.alloc_word(self.base, isolate=True)

    # -- transactional operations -------------------------------------------------

    def malloc(self, t, n_words):
        """Allocate ``n_words``; returns the payload address.

        First-fit over the free list, falling back to advancing the brk
        pointer (the "system call" the paper wraps in open nesting).
        """
        if n_words < 1:
            raise HeapError("malloc of zero words")
        # Walk the free list.
        prev_addr = self.free_head_addr
        block = yield t.load(prev_addr)
        while block:
            size = yield t.load(block)
            nxt = yield t.load(block + WORD_SIZE)
            if size >= n_words:
                yield t.store(prev_addr, nxt)  # unlink (no splitting)
                return block + _HDR_WORDS * WORD_SIZE
            prev_addr = block + WORD_SIZE
            block = nxt
        # brk: extend the used region.
        brk = yield t.load(self.brk_addr)
        total = (_HDR_WORDS + n_words) * WORD_SIZE
        if brk + total > self.limit:
            raise HeapError("shared heap exhausted")
        yield t.store(self.brk_addr, brk + total)
        yield t.store(brk, n_words)
        return brk + _HDR_WORDS * WORD_SIZE

    def free(self, t, payload_addr):
        """Return a block to the free list."""
        block = payload_addr - _HDR_WORDS * WORD_SIZE
        if not self.base <= block < self.limit:
            raise HeapError(f"free of non-heap address {payload_addr:#x}")
        head = yield t.load(self.free_head_addr)
        yield t.store(block + WORD_SIZE, head)
        yield t.store(self.free_head_addr, block)

    def free_list_length(self, t):
        """Diagnostic: length of the free list."""
        count = 0
        block = yield t.load(self.free_head_addr)
        while block:
            count += 1
            block = yield t.load(block + WORD_SIZE)
        return count
